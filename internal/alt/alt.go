// Package alt implements the ALT machinery of Goldberg & Harrelson: a
// landmark set U with a precomputed |U| x |V| distance label matrix.
// Two query modes are provided:
//
//   - LT estimation (the paper's "LT" comparator): combine the
//     triangle-inequality lower bound max_u |d(u,s)-d(u,t)| and the
//     upper bound min_u d(u,s)+d(u,t) into an O(|U|) distance estimate
//     with no graph search.
//   - ALT A* search: exact point-to-point search guided by the landmark
//     lower bound.
package alt

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/sssp"
)

// Index holds the landmark label matrix.
type Index struct {
	g *graph.Graph
	// labels is |U| x |V| row-major: labels[u*n+v] = d(U[u], v).
	labels    []float64
	landmarks []int32
	n         int
}

// Build selects count landmarks by farthest selection and runs one
// Dijkstra per landmark to fill the label matrix.
func Build(g *graph.Graph, count int, seed int64) (*Index, error) {
	if count < 1 {
		return nil, fmt.Errorf("alt: need at least one landmark, got %d", count)
	}
	lms, err := landmark.Farthest(g, count, seed)
	if err != nil {
		return nil, err
	}
	return BuildWithLandmarks(g, lms)
}

// BuildWithLandmarks builds the label matrix for a caller-chosen
// landmark set.
func BuildWithLandmarks(g *graph.Graph, landmarks []int32) (*Index, error) {
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("alt: empty landmark set")
	}
	n := g.NumVertices()
	idx := &Index{
		g:         g,
		labels:    make([]float64, len(landmarks)*n),
		landmarks: append([]int32(nil), landmarks...),
		n:         n,
	}
	ws := sssp.NewWorkspace(g)
	for i, u := range landmarks {
		row := idx.labels[i*n : (i+1)*n]
		ws.FromSource(u, row)
	}
	return idx, nil
}

// NumLandmarks returns |U|.
func (idx *Index) NumLandmarks() int { return len(idx.landmarks) }

// Landmarks returns the landmark ids (aliasing internal storage).
func (idx *Index) Landmarks() []int32 { return idx.landmarks }

// IndexBytes reports the label matrix size in bytes (the Table IV
// metric for LT).
func (idx *Index) IndexBytes() int64 {
	return int64(len(idx.labels)) * 8
}

// Restrict returns a new index holding only the landmarks at the
// given positions (indices into Landmarks(), not vertex ids). The
// label matrix keeps its full |V| columns, so the restricted index
// still bounds every vertex pair — any landmark subset yields valid,
// merely looser, triangle-inequality bounds. This is how a shard
// carries a region-sized guard that stays correct for cross-region
// pairs.
func (idx *Index) Restrict(keep []int) (*Index, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("alt: restricting to an empty landmark set")
	}
	out := &Index{
		g:         idx.g,
		labels:    make([]float64, len(keep)*idx.n),
		landmarks: make([]int32, len(keep)),
		n:         idx.n,
	}
	for j, i := range keep {
		if i < 0 || i >= len(idx.landmarks) {
			return nil, fmt.Errorf("alt: landmark position %d out of range [0,%d)", i, len(idx.landmarks))
		}
		out.landmarks[j] = idx.landmarks[i]
		copy(out.labels[j*idx.n:(j+1)*idx.n], idx.labels[i*idx.n:(i+1)*idx.n])
	}
	return out, nil
}

// Bounds returns the landmark lower and upper bounds on d(s,t).
func (idx *Index) Bounds(s, t int32) (lo, hi float64) {
	hi = sssp.Inf
	for i := 0; i < len(idx.landmarks); i++ {
		ds := idx.labels[i*idx.n+int(s)]
		dt := idx.labels[i*idx.n+int(t)]
		if ds == sssp.Inf || dt == sssp.Inf {
			continue
		}
		diff := ds - dt
		if diff < 0 {
			diff = -diff
		}
		if diff > lo {
			lo = diff
		}
		if sum := ds + dt; sum < hi {
			hi = sum
		}
	}
	// When a landmark lies on the s-t shortest path lo equals hi
	// mathematically; floating-point rounding can leave lo one ulp
	// above. Keep the interval well-formed.
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// BoundsInfo is the provenance of one landmark interval: the bounds
// plus the landmark vertex that produced each (the tightest of the
// |U| candidates). Landmark fields are -1 when no landmark had finite
// labels for both endpoints (disconnected components).
type BoundsInfo struct {
	Lo, Hi                 float64
	LoLandmark, HiLandmark int32
}

// BoundsDetail returns the landmark bounds on d(s,t) together with the
// landmark responsible for each side of the interval, for query
// explainability. The interval matches Bounds exactly.
func (idx *Index) BoundsDetail(s, t int32) BoundsInfo {
	info := BoundsInfo{Hi: sssp.Inf, LoLandmark: -1, HiLandmark: -1}
	for i := 0; i < len(idx.landmarks); i++ {
		ds := idx.labels[i*idx.n+int(s)]
		dt := idx.labels[i*idx.n+int(t)]
		if ds == sssp.Inf || dt == sssp.Inf {
			continue
		}
		diff := ds - dt
		if diff < 0 {
			diff = -diff
		}
		if diff > info.Lo || info.LoLandmark < 0 {
			info.Lo, info.LoLandmark = diff, idx.landmarks[i]
		}
		if sum := ds + dt; sum < info.Hi {
			info.Hi, info.HiLandmark = sum, idx.landmarks[i]
		}
	}
	if info.Lo > info.Hi {
		info.Lo = info.Hi
	}
	return info
}

// Estimate returns the LT distance estimate: the midpoint of the
// landmark lower and upper bounds. The true distance always lies within
// [lo, hi], so the midpoint's error is at most (hi-lo)/2.
func (idx *Index) Estimate(s, t int32) float64 {
	if s == t {
		return 0
	}
	lo, hi := idx.Bounds(s, t)
	if hi == sssp.Inf {
		return lo
	}
	return (lo + hi) / 2
}

// LowerBound returns the admissible A* heuristic to target t at vertex v.
func (idx *Index) LowerBound(v, t int32) float64 {
	var lo float64
	for i := 0; i < len(idx.landmarks); i++ {
		dv := idx.labels[i*idx.n+int(v)]
		dt := idx.labels[i*idx.n+int(t)]
		if dv == sssp.Inf || dt == sssp.Inf {
			continue
		}
		diff := dv - dt
		if diff < 0 {
			diff = -diff
		}
		if diff > lo {
			lo = diff
		}
	}
	return lo
}

// SearchDistance runs the exact ALT A* search from s to t using the
// landmark heuristic, returning the distance and the number of settled
// vertices.
func (idx *Index) SearchDistance(ws *sssp.Workspace, s, t int32) (float64, int) {
	return ws.AStarDistance(s, t, func(v int32) float64 { return idx.LowerBound(v, t) })
}
