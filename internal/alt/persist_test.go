package alt

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	g := testGraph(t)
	idx, err := Build(g, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "alt.idx")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != g.NumVertices() || loaded.NumLandmarks() != idx.NumLandmarks() {
		t.Fatalf("loaded index is %d vertices x %d landmarks, want %d x %d",
			loaded.NumVertices(), loaded.NumLandmarks(), g.NumVertices(), idx.NumLandmarks())
	}
	// Estimation queries agree exactly on the graph-free loaded index.
	rng := rand.New(rand.NewSource(6))
	n := g.NumVertices()
	for trial := 0; trial < 200; trial++ {
		s, u := int32(rng.Intn(n)), int32(rng.Intn(n))
		lo1, hi1 := idx.Bounds(s, u)
		lo2, hi2 := loaded.Bounds(s, u)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("(%d,%d): bounds [%v,%v] != loaded [%v,%v]", s, u, lo1, hi1, lo2, hi2)
		}
		if idx.Estimate(s, u) != loaded.Estimate(s, u) {
			t.Fatalf("(%d,%d): estimate mismatch after reload", s, u)
		}
	}
}

func TestIndexLoadRejectsCorruption(t *testing.T) {
	g := testGraph(t)
	idx, err := Build(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "alt.idx")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"bad magic":      func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c },
		"flipped label":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-40] ^= 0x01; return c },
		"truncated":      func(b []byte) []byte { return b[:len(b)-16] },
		"empty":          func(b []byte) []byte { return nil },
		"only magic":     func(b []byte) []byte { return b[:len(altMagic)] },
		"bad trailer":    func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0xff; return c },
		"length tampered": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(altMagic)] ^= 0x01
			return c
		},
	}
	for name, corrupt := range cases {
		p := filepath.Join(dir, "bad.idx")
		if err := os.WriteFile(p, corrupt(good), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(p); err == nil {
			t.Errorf("%s: corrupted index loaded without error", name)
		}
	}
}
