package oracle

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(14, 14, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEstimateAccuracy(t *testing.T) {
	g := testGraph(t)
	o, err := Build(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	var sumRel float64
	count := 0
	for trial := 0; trial < 400; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got := o.Estimate(s, u)
		if want == 0 {
			if got != 0 {
				t.Fatalf("(%d,%d): estimate %v for zero distance", s, u, got)
			}
			continue
		}
		rel := math.Abs(got-want) / want
		sumRel += rel
		count++
		// Individual queries can err more than ε on a road network (the
		// separation bound is Euclidean), but not wildly.
		if rel > 1.5 {
			t.Fatalf("(%d,%d): estimate %v vs exact %v (rel %.2f)", s, u, got, want, rel)
		}
	}
	if mean := sumRel / float64(count); mean > 0.15 {
		t.Fatalf("mean relative error %.3f too high for eps=0.5", mean)
	}
}

func TestTighterEpsMoreAccurate(t *testing.T) {
	g := testGraph(t)
	loose, err := Build(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Build(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if tight.NumPairs() <= loose.NumPairs() {
		t.Fatalf("tight eps stored %d pairs, loose %d: no growth", tight.NumPairs(), loose.NumPairs())
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	var looseErr, tightErr float64
	cnt := 0
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		if want <= 0 {
			continue
		}
		looseErr += math.Abs(loose.Estimate(s, u)-want) / want
		tightErr += math.Abs(tight.Estimate(s, u)-want) / want
		cnt++
	}
	if tightErr >= looseErr {
		t.Fatalf("eps=0.25 error %v not below eps=1.0 error %v", tightErr/float64(cnt), looseErr/float64(cnt))
	}
}

func TestSelfAndSameLeaf(t *testing.T) {
	g := testGraph(t)
	o, err := Build(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := o.Estimate(7, 7); d != 0 {
		t.Fatalf("self estimate %v", d)
	}
}

func TestCoincidentVertices(t *testing.T) {
	// Vertices at identical coordinates exercise the depth cap and the
	// same-leaf exact fallback.
	b := graph.NewBuilder(4, 4)
	b.AddVertex(0, 0)
	b.AddVertex(0, 0)
	b.AddVertex(5, 5)
	b.AddVertex(5, 5)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 10)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	o, err := Build(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := o.Estimate(0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatalf("coincident-pair estimate %v, want exact 1", d)
	}
	if d := o.Estimate(2, 3); math.Abs(d-1) > 1e-12 {
		t.Fatalf("coincident-pair estimate %v, want exact 1", d)
	}
	if d := o.Estimate(0, 3); d <= 0 {
		t.Fatalf("cross-pair estimate %v", d)
	}
}

func TestBuildValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Build(g, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Build(g, -1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := Build(graph.NewBuilder(0, 0).Build(), 0.5); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDiagnostics(t *testing.T) {
	g := testGraph(t)
	o, err := Build(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumPairs() <= 0 || o.NumSSSP() <= 0 || o.IndexBytes() <= 0 {
		t.Fatalf("diagnostics: pairs=%d sssp=%d bytes=%d", o.NumPairs(), o.NumSSSP(), o.IndexBytes())
	}
	if o.Epsilon() != 0.5 {
		t.Fatalf("Epsilon = %v", o.Epsilon())
	}
	// Every distinct-source pair answered in bounded descent implies the
	// pair map covers the query space; spot-check many random queries
	// terminate (they would hang otherwise).
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		s := int32(rng.Intn(g.NumVertices()))
		u := int32(rng.Intn(g.NumVertices()))
		_ = o.Estimate(s, u)
	}
}
