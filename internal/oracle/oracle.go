// Package oracle implements a distance oracle in the style of
// Sankaranarayanan & Samet (TKDE 2010), the paper's "Distance Oracle"
// comparator: vertices are organized in a PR quadtree, vertex pairs are
// grouped into well-separated block pairs, and each block pair stores
// one representative network distance that answers any query falling
// into it in O(log |V|) descent steps.
//
// Well-separation is geometric (Euclidean) with separation parameter
// s = 2/ε; on road networks — whose distances track Euclidean distance
// up to a detour factor — this delivers the ε-scale relative errors the
// paper reports, and the experiments measure the realized error rather
// than assume the bound.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/sssp"
)

const maxDepth = 28

type qnode struct {
	cx, cy, half float64
	children     [4]int32 // -1 when absent
	rep          int32    // representative vertex inside the block
	count        int32    // vertices inside
	verts        []int32  // only for leaves
}

// Oracle is a built distance oracle.
type Oracle struct {
	g     *graph.Graph
	eps   float64
	nodes []qnode
	pairs map[uint64]float64
	ws    *sssp.Workspace // fallback for same-leaf queries

	// build statistics
	nPairs       int
	nSSSP        int
	maxDepthSeen int
}

// Build constructs the oracle with approximation parameter eps
// (the paper evaluates ε = 0.5 on BJ).
func Build(g *graph.Graph, eps float64) (*Oracle, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("oracle: eps must be positive, got %v", eps)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	o := &Oracle{g: g, eps: eps, pairs: make(map[uint64]float64), ws: sssp.NewWorkspace(g)}

	// Root square covering the bounding box.
	minX, minY, maxX, maxY := g.BoundingBox()
	cx := (minX + maxX) / 2
	cy := (minY + maxY) / 2
	half := math.Max(maxX-minX, maxY-minY)/2 + 1e-9
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	o.buildNode(all, cx, cy, half, 0)

	// Collect WSPD pairs starting from the root against itself.
	type rawPair struct{ a, b int32 }
	var raw []rawPair
	var recurse func(a, b int32)
	sep := 2 / eps
	recurse = func(a, b int32) {
		if a == b {
			na := &o.nodes[a]
			if na.verts != nil {
				return // intra-leaf pairs answered by exact fallback
			}
			var kids []int32
			for _, c := range na.children {
				if c >= 0 {
					kids = append(kids, c)
				}
			}
			for i := 0; i < len(kids); i++ {
				for j := i; j < len(kids); j++ {
					recurse(kids[i], kids[j])
				}
			}
			return
		}
		if o.wellSeparated(a, b, sep) || (o.nodes[a].verts != nil && o.nodes[b].verts != nil) {
			raw = append(raw, rawPair{a, b})
			return
		}
		s := o.splitChoice(a, b)
		var fixed int32
		if s == a {
			fixed = b
		} else {
			fixed = a
		}
		for _, c := range o.nodes[s].children {
			if c >= 0 {
				recurse(c, fixed)
			}
		}
	}
	recurse(0, 0)
	o.nPairs = len(raw)

	// Batch representative distances: one SSSP per distinct source rep.
	sort.Slice(raw, func(i, j int) bool {
		ra := o.nodes[raw[i].a].rep
		rb := o.nodes[raw[j].a].rep
		return ra < rb
	})
	var dist []float64
	var curSrc int32 = -1
	for _, p := range raw {
		ra := o.nodes[p.a].rep
		rb := o.nodes[p.b].rep
		if ra != curSrc {
			dist = o.ws.FromSource(ra, dist)
			curSrc = ra
			o.nSSSP++
		}
		o.pairs[pairKey(p.a, p.b)] = dist[rb]
	}
	return o, nil
}

// buildNode recursively subdivides verts into quadtree nodes and
// returns the node id.
func (o *Oracle) buildNode(verts []int32, cx, cy, half float64, depth int) int32 {
	id := int32(len(o.nodes))
	o.nodes = append(o.nodes, qnode{
		cx: cx, cy: cy, half: half,
		children: [4]int32{-1, -1, -1, -1},
		rep:      verts[0],
		count:    int32(len(verts)),
	})
	if depth > o.maxDepthSeen {
		o.maxDepthSeen = depth
	}
	if len(verts) == 1 || depth >= maxDepth {
		o.nodes[id].verts = verts
		return id
	}
	var quad [4][]int32
	for _, v := range verts {
		quad[o.quadrant(cx, cy, v)] = append(quad[o.quadrant(cx, cy, v)], v)
	}
	h2 := half / 2
	offs := [4][2]float64{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}}
	for q := 0; q < 4; q++ {
		if len(quad[q]) == 0 {
			continue
		}
		child := o.buildNode(quad[q], cx+offs[q][0]*h2, cy+offs[q][1]*h2, h2, depth+1)
		o.nodes[id].children[q] = child
	}
	return id
}

func (o *Oracle) quadrant(cx, cy float64, v int32) int {
	q := 0
	if o.g.X(v) >= cx {
		q |= 1
	}
	if o.g.Y(v) >= cy {
		q |= 2
	}
	return q
}

// wellSeparated tests geometric separation: center distance minus both
// enclosing-circle radii at least sep times the larger radius.
func (o *Oracle) wellSeparated(a, b int32, sep float64) bool {
	na, nb := &o.nodes[a], &o.nodes[b]
	ra := na.half * math.Sqrt2
	rb := nb.half * math.Sqrt2
	dx := na.cx - nb.cx
	dy := na.cy - nb.cy
	d := math.Sqrt(dx*dx + dy*dy)
	rMax := math.Max(ra, rb)
	return d-ra-rb >= sep*rMax
}

// splitChoice picks which node of an unseparated pair to subdivide:
// never a leaf, otherwise the geometrically larger, ties broken by
// smaller id. The rule is symmetric in (a, b), so query descent can
// replay it. Callers guarantee at least one node is internal (leaf-leaf
// pairs are stored, not split).
func (o *Oracle) splitChoice(a, b int32) int32 {
	na, nb := &o.nodes[a], &o.nodes[b]
	switch {
	case na.verts != nil:
		return b
	case nb.verts != nil:
		return a
	case na.half > nb.half:
		return a
	case nb.half > na.half:
		return b
	case a < b:
		return a
	default:
		return b
	}
}

func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// childContaining returns the child of node holding vertex v.
func (o *Oracle) childContaining(node int32, v int32) int32 {
	nd := &o.nodes[node]
	c := nd.children[o.quadrant(nd.cx, nd.cy, v)]
	return c
}

// Estimate returns the oracle's approximate distance between s and t.
// Same-leaf pairs (spatially coincident endpoints) fall back to an
// exact bidirectional Dijkstra, mirroring the original system's exact
// handling of intra-block queries.
func (o *Oracle) Estimate(s, t int32) float64 {
	if s == t {
		return 0
	}
	a, b := int32(0), int32(0)
	for {
		if a == b {
			if o.nodes[a].verts != nil {
				return o.ws.BidirectionalDistance(s, t)
			}
			a2 := o.childContaining(a, s)
			b2 := o.childContaining(b, t)
			a, b = a2, b2
			continue
		}
		if d, ok := o.pairs[pairKey(a, b)]; ok {
			return d
		}
		if sc := o.splitChoice(a, b); sc == a {
			a = o.childContaining(a, s)
		} else {
			b = o.childContaining(b, t)
		}
	}
}

// NumPairs returns the number of stored block pairs.
func (o *Oracle) NumPairs() int { return o.nPairs }

// NumSSSP returns how many Dijkstra runs construction needed.
func (o *Oracle) NumSSSP() int { return o.nSSSP }

// Epsilon returns the approximation parameter.
func (o *Oracle) Epsilon() float64 { return o.eps }

// IndexBytes reports pair-map plus quadtree storage in bytes (the
// Table IV metric; the oracle's large footprint is its known weakness).
func (o *Oracle) IndexBytes() int64 {
	// 16 bytes per stored pair entry plus ~48 bytes per quadtree node.
	return int64(len(o.pairs))*16 + int64(len(o.nodes))*48
}
