package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func TestHighwayConnectedAndValid(t *testing.T) {
	cfg := DefaultHighwayConfig(1)
	cfg.Cities = 3
	cfg.CityRows, cfg.CityCols = 10, 10
	g, err := Highway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// All three city grids plus interchanges survive.
	if g.NumVertices() < 3*10*10/2 {
		t.Fatalf("only %d vertices survived", g.NumVertices())
	}
}

func TestHighwayTwoLevelStructure(t *testing.T) {
	// Long-range distances should track straight lines closely (highways
	// hug the line) while intra-city distances carry grid detours.
	cfg := DefaultHighwayConfig(2)
	cfg.Cities = 3
	cfg.CityRows, cfg.CityCols = 10, 10
	cfg.ExtraLinks = 0
	g, err := Highway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)

	// Find a far pair (opposite corners of the bounding box region).
	minX, minY, maxX, maxY := g.BoundingBox()
	var a, b int32
	bestA, bestB := math.Inf(1), math.Inf(1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := math.Hypot(g.X(v)-minX, g.Y(v)-minY); d < bestA {
			a, bestA = v, d
		}
		if d := math.Hypot(g.X(v)-maxX, g.Y(v)-maxY); d < bestB {
			b, bestB = v, d
		}
	}
	network := ws.Distance(a, b)
	euclid := g.Euclidean(a, b)
	if network == sssp.Inf {
		t.Fatal("far pair unreachable")
	}
	if ratio := network / euclid; ratio > 2.0 {
		t.Fatalf("long-range detour ratio %.2f too high for a highway network", ratio)
	}
}

func TestHighwayValidation(t *testing.T) {
	bad := []func(*HighwayConfig){
		func(c *HighwayConfig) { c.Cities = 1 },
		func(c *HighwayConfig) { c.CityRows = 1 },
		func(c *HighwayConfig) { c.RegionSize = 0 },
		func(c *HighwayConfig) { c.HighwaySpacing = -1 },
		func(c *HighwayConfig) { c.ExtraLinks = -1 },
		func(c *HighwayConfig) { c.Grid.DetourLo = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultHighwayConfig(1)
		mutate(&cfg)
		if _, err := Highway(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHighwayDeterministic(t *testing.T) {
	cfg := DefaultHighwayConfig(5)
	cfg.Cities = 2
	cfg.CityRows, cfg.CityCols = 6, 6
	g1, err := Highway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Highway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different highway networks")
	}
	for v := int32(0); v < int32(g1.NumVertices()); v++ {
		if g1.X(v) != g2.X(v) || g1.Y(v) != g2.Y(v) {
			t.Fatal("coordinates differ between runs")
		}
	}
}
