package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// HighwayConfig shapes a multi-city network: several dense urban grids
// scattered over a large region, connected by sparse long highway
// chains. State-scale road networks (the paper's FLA and US-W) have
// exactly this two-level structure, which stresses long-range distance
// estimation differently from a single grid.
type HighwayConfig struct {
	// Cities is the number of urban grids.
	Cities int
	// CityRows and CityCols shape each city's grid.
	CityRows, CityCols int
	// RegionSize is the side length of the square region the cities are
	// scattered over, in weight units.
	RegionSize float64
	// HighwaySpacing is the distance between consecutive interchange
	// vertices along a highway chain.
	HighwaySpacing float64
	// ExtraLinks adds this many redundant highway links beyond the
	// spanning tree connecting the cities.
	ExtraLinks int
	// Grid configures the per-city street generator.
	Grid Config
}

// DefaultHighwayConfig returns a five-city configuration.
func DefaultHighwayConfig(seed int64) HighwayConfig {
	cfg := DefaultConfig(seed)
	return HighwayConfig{
		Cities:         5,
		CityRows:       24,
		CityCols:       24,
		RegionSize:     25000,
		HighwaySpacing: 700,
		ExtraLinks:     2,
		Grid:           cfg,
	}
}

// Highway generates the multi-city network.
func Highway(cfg HighwayConfig) (*graph.Graph, error) {
	switch {
	case cfg.Cities < 2:
		return nil, fmt.Errorf("gen: highway needs at least 2 cities, got %d", cfg.Cities)
	case cfg.CityRows < 2 || cfg.CityCols < 2:
		return nil, fmt.Errorf("gen: city grids need rows, cols >= 2")
	case cfg.RegionSize <= 0 || cfg.HighwaySpacing <= 0:
		return nil, fmt.Errorf("gen: region size and highway spacing must be positive")
	case cfg.ExtraLinks < 0:
		return nil, fmt.Errorf("gen: extra links must be non-negative")
	}
	if err := cfg.Grid.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Grid.Seed))

	b := graph.NewBuilder(cfg.Cities*cfg.CityRows*cfg.CityCols, cfg.Cities*cfg.CityRows*cfg.CityCols*2)
	// Coordinates tracked locally so edge lengths never need a
	// provisional build.
	var px, py []float64
	addVertex := func(x, y float64) int32 {
		px = append(px, x)
		py = append(py, y)
		return b.AddVertex(x, y)
	}

	// Scatter city centers with a minimum separation so grids do not
	// overlap.
	citySpan := float64(maxInt(cfg.CityRows, cfg.CityCols)) * cfg.Grid.CellSize
	centers := make([][2]float64, 0, cfg.Cities)
	for len(centers) < cfg.Cities {
		cx := rng.Float64() * cfg.RegionSize
		cy := rng.Float64() * cfg.RegionSize
		ok := true
		for _, c := range centers {
			if math.Hypot(cx-c[0], cy-c[1]) < 1.5*citySpan {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, [2]float64{cx, cy})
		}
	}

	// Build each city grid, offset to its center, remembering a gateway
	// vertex (the one nearest the city center).
	gateways := make([]int32, cfg.Cities)
	for ci, center := range centers {
		cityCfg := cfg.Grid
		cityCfg.Seed = cfg.Grid.Seed + int64(ci) + 1
		city, err := Grid(cfg.CityRows, cfg.CityCols, cityCfg)
		if err != nil {
			return nil, err
		}
		offX := center[0] - float64(cfg.CityCols)*cfg.Grid.CellSize/2
		offY := center[1] - float64(cfg.CityRows)*cfg.Grid.CellSize/2
		remap := make([]int32, city.NumVertices())
		bestGate, bestDist := int32(0), math.Inf(1)
		for v := int32(0); v < int32(city.NumVertices()); v++ {
			x := city.X(v) + offX
			y := city.Y(v) + offY
			remap[v] = addVertex(x, y)
			if d := math.Hypot(x-center[0], y-center[1]); d < bestDist {
				bestGate, bestDist = remap[v], d
			}
		}
		for v := int32(0); v < int32(city.NumVertices()); v++ {
			ts, wts := city.Neighbors(v)
			for i, u := range ts {
				if u > v {
					if err := b.AddEdge(remap[v], remap[u], wts[i]); err != nil {
						return nil, err
					}
				}
			}
		}
		gateways[ci] = bestGate
	}

	// Highways: a random spanning tree over cities plus extra links,
	// each realized as a chain of interchange vertices.
	type link struct{ a, b int }
	var links []link
	perm := rng.Perm(cfg.Cities)
	for i := 1; i < cfg.Cities; i++ {
		links = append(links, link{perm[i], perm[rng.Intn(i)]})
	}
	for i := 0; i < cfg.ExtraLinks; i++ {
		a := rng.Intn(cfg.Cities)
		c := rng.Intn(cfg.Cities)
		if a != c {
			links = append(links, link{a, c})
		}
	}
	addHighwayEdge := func(u, v int32) error {
		length := math.Hypot(px[u]-px[v], py[u]-py[v])
		if length <= 0 {
			length = cfg.Grid.CellSize
		}
		detour := 1 + rng.Float64()*0.05 // highways hug the straight line
		return b.AddEdge(u, v, length*detour)
	}
	for _, l := range links {
		ga, gb := gateways[l.a], gateways[l.b]
		ax, ay := px[ga], py[ga]
		bx, by := px[gb], py[gb]
		total := math.Hypot(bx-ax, by-ay)
		hops := int(total/cfg.HighwaySpacing) + 1
		prev := ga
		for h := 1; h < hops; h++ {
			frac := float64(h) / float64(hops)
			jx := (rng.Float64()*2 - 1) * cfg.HighwaySpacing * 0.1
			jy := (rng.Float64()*2 - 1) * cfg.HighwaySpacing * 0.1
			v := addVertex(ax+(bx-ax)*frac+jx, ay+(by-ay)*frac+jy)
			if err := addHighwayEdge(prev, v); err != nil {
				return nil, err
			}
			prev = v
		}
		if err := addHighwayEdge(prev, gb); err != nil {
			return nil, err
		}
	}
	g := b.Build()
	g, _ = graph.LargestComponent(g)
	return g, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
