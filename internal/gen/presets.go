package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Preset identifies a synthetic stand-in for one of the paper's
// datasets (Table II). The "-mini" suffix signals the deliberate
// down-scaling documented in DESIGN.md: real BJ/FLA/US-W data is not
// redistributable and pure-Go training of millions of vertices is out
// of laptop scope, but the three presets preserve the paper's relative
// size ladder (1x : ~2x : ~4x).
type Preset struct {
	// Name is the preset identifier, e.g. "bj-mini".
	Name string
	// PaperName is the dataset the preset stands in for.
	PaperName string
	// PaperVertices and PaperEdges are the sizes from Table II.
	PaperVertices, PaperEdges int
	// Rows and Cols shape the generated lattice.
	Rows, Cols int
	// Seed fixes the generated topology.
	Seed int64
}

// Presets returns the three dataset stand-ins in the paper's order.
func Presets() []Preset {
	return []Preset{
		{Name: "bj-mini", PaperName: "BJ (Beijing)", PaperVertices: 338024, PaperEdges: 881050, Rows: 90, Cols: 90, Seed: 1},
		{Name: "fla-mini", PaperName: "FLA (Florida)", PaperVertices: 1070376, PaperEdges: 2687902, Rows: 127, Cols: 127, Seed: 2},
		{Name: "usw-mini", PaperName: "US-W (Western USA)", PaperVertices: 6262104, PaperEdges: 15119284, Rows: 180, Cols: 180, Seed: 3},
	}
}

// PresetByName looks a preset up by name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, 3)
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, names)
}

// Build generates the preset's road network. The result is
// deterministic for a given preset.
func (p Preset) Build() (*graph.Graph, error) {
	return Grid(p.Rows, p.Cols, DefaultConfig(p.Seed))
}

// BuildScaled generates the preset's topology scaled by the given
// factor on each axis (factor 2 quadruples the vertex count). It lets
// the benchmark harness stress scalability without new presets.
func (p Preset) BuildScaled(factor float64) (*graph.Graph, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("gen: scale factor must be positive, got %v", factor)
	}
	rows := int(float64(p.Rows) * factor)
	cols := int(float64(p.Cols) * factor)
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("gen: scale factor %v collapses preset %s below a 2x2 grid", factor, p.Name)
	}
	return Grid(rows, cols, DefaultConfig(p.Seed))
}
