package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func regimeTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := Grid(12, 12, DefaultConfig(7))
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	return g
}

func TestPerturbDeterministic(t *testing.T) {
	g := regimeTestGraph(t)
	cfg, ok := RegimeByName("rush-am", 42)
	if !ok {
		t.Fatal("rush-am preset missing")
	}
	a, err := Perturb(g, cfg)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	b, err := Perturb(g, cfg)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("repeat perturb changed shape: %d/%d vs %d/%d",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		ta, wa := a.Neighbors(v)
		tb, wb := b.Neighbors(v)
		if len(ta) != len(tb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range ta {
			if ta[i] != tb[i] || wa[i] != wb[i] {
				t.Fatalf("vertex %d edge %d differs: (%d,%v) vs (%d,%v)",
					v, i, ta[i], wa[i], tb[i], wb[i])
			}
		}
	}
}

func TestPerturbPreservesTopology(t *testing.T) {
	g := regimeTestGraph(t)
	cfg, _ := RegimeByName("incident", 3)
	p, err := Perturb(g, cfg)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	if p.NumVertices() != g.NumVertices() {
		t.Fatalf("vertex count changed: %d -> %d", g.NumVertices(), p.NumVertices())
	}
	if p.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), p.NumEdges())
	}
	gx, gy := g.Coords()
	px, py := p.Coords()
	for i := range gx {
		if gx[i] != px[i] || gy[i] != py[i] {
			t.Fatalf("vertex %d moved", i)
		}
	}
	// Every weight stays positive finite and the base graph is untouched.
	for v := int32(0); v < int32(p.NumVertices()); v++ {
		_, ws := p.Neighbors(v)
		for _, w := range ws {
			if !(w > 0) || math.IsInf(w, 0) {
				t.Fatalf("vertex %d has implausible perturbed weight %v", v, w)
			}
		}
	}
}

func TestPerturbShiftsWeights(t *testing.T) {
	g := regimeTestGraph(t)
	cfg, _ := RegimeByName("rush-am", 11)
	p, err := Perturb(g, cfg)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	// Rush hour inflates everything: local streets by >= 1.15*(1-J),
	// arterials by much more. Total weight must rise materially.
	var base, pert float64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		_, bw := g.Neighbors(v)
		_, pw := p.Neighbors(v)
		for i := range bw {
			base += bw[i]
			pert += pw[i]
		}
	}
	if pert < base*1.1 {
		t.Fatalf("rush-am barely moved total weight: %v -> %v", base, pert)
	}
	// The arterial band must be hit harder than the local band: the max
	// per-edge ratio should reflect ArterialFactor, not just LocalFactor.
	maxRatio := 0.0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, bw := g.Neighbors(v)
		_, pw := p.Neighbors(v)
		for i, tt := range ts {
			if tt > v {
				if r := pw[i] / bw[i]; r > maxRatio {
					maxRatio = r
				}
			}
		}
	}
	if maxRatio < 1.5 {
		t.Fatalf("no edge saw arterial-scale inflation, max ratio %v", maxRatio)
	}
}

func TestPerturbSeedsDiffer(t *testing.T) {
	g := regimeTestGraph(t)
	c1, _ := RegimeByName("incident", 1)
	c2, _ := RegimeByName("incident", 2)
	p1, err := Perturb(g, c1)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	p2, err := Perturb(g, c2)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	same := true
	for v := int32(0); v < int32(p1.NumVertices()) && same; v++ {
		_, w1 := p1.Neighbors(v)
		_, w2 := p2.Neighbors(v)
		for i := range w1 {
			if w1[i] != w2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical incident regimes")
	}
}

func TestPerturbValidation(t *testing.T) {
	g := regimeTestGraph(t)
	bad := []RegimeConfig{
		{ArterialFrac: -0.1},
		{ArterialFrac: 1.5},
		{ArterialFactor: -1},
		{LocalFactor: math.Inf(1)},
		{Incidents: -1},
		{IncidentRadius: -2},
		{IncidentFactor: -0.5},
		{JitterPct: 1.0},
	}
	for i, cfg := range bad {
		if _, err := Perturb(g, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, ok := RegimeByName("no-such-regime", 1); ok {
		t.Error("unknown regime name resolved")
	}
	if len(RegimeNames()) == 0 {
		t.Error("no regime presets registered")
	}
}
