// Package gen builds synthetic road networks.
//
// The paper evaluates on three real road networks (Beijing, Florida,
// Western USA) that are not redistributable here, so gen produces the
// closest synthetic equivalents: planar, near-grid networks whose edge
// weights are Euclidean segment lengths inflated by a road detour
// factor. Those are exactly the structural properties (planarity,
// grid-likeness, metric weights) the paper's own argument for the L1
// representation rests on, so experiment shapes carry over. Dataset
// presets mirror the paper's three scales at laptop-friendly sizes.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Config controls the road-network generator. The zero value is not
// useful; start from DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// CellSize is the spacing of the underlying lattice in weight units
	// (think meters). Edge weights scale with it.
	CellSize float64
	// Jitter displaces each vertex by up to Jitter*CellSize in each axis,
	// breaking the perfect lattice the way real road joints do.
	Jitter float64
	// DeleteFrac removes this fraction of lattice edges, creating the
	// irregular blocks and dead ends of real street maps. The largest
	// connected component is kept.
	DeleteFrac float64
	// DiagonalFrac adds this fraction (of cell count) of diagonal
	// shortcut edges, standing in for non-axis-aligned streets.
	DiagonalFrac float64
	// DetourLo and DetourHi bound the multiplicative factor applied to
	// the Euclidean length of each segment (roads are never shorter than
	// the straight line).
	DetourLo, DetourHi float64
}

// DefaultConfig returns the generator configuration used by the dataset
// presets.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		CellSize:     100,
		Jitter:       0.22,
		DeleteFrac:   0.10,
		DiagonalFrac: 0.04,
		DetourLo:     1.00,
		DetourHi:     1.30,
	}
}

func (c Config) validate() error {
	switch {
	case c.CellSize <= 0:
		return fmt.Errorf("gen: CellSize must be positive, got %v", c.CellSize)
	case c.Jitter < 0 || c.Jitter >= 0.5:
		return fmt.Errorf("gen: Jitter must be in [0,0.5), got %v", c.Jitter)
	case c.DeleteFrac < 0 || c.DeleteFrac >= 1:
		return fmt.Errorf("gen: DeleteFrac must be in [0,1), got %v", c.DeleteFrac)
	case c.DiagonalFrac < 0:
		return fmt.Errorf("gen: DiagonalFrac must be non-negative, got %v", c.DiagonalFrac)
	case c.DetourLo < 1 || c.DetourHi < c.DetourLo:
		return fmt.Errorf("gen: detour range [%v,%v] invalid (need 1 <= lo <= hi)", c.DetourLo, c.DetourHi)
	}
	return nil
}

// Grid generates a rows x cols road network per cfg. The result is the
// largest connected component of the perturbed lattice, so its vertex
// count may be slightly below rows*cols.
func Grid(rows, cols int, cfg Config) (*graph.Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("gen: grid needs rows, cols >= 2, got %dx%d", rows, cols)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := graph.NewBuilder(rows*cols, rows*cols*2)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := (float64(c) + (rng.Float64()*2-1)*cfg.Jitter) * cfg.CellSize
			y := (float64(r) + (rng.Float64()*2-1)*cfg.Jitter) * cfg.CellSize
			b.AddVertex(x, y)
		}
	}
	// Read coordinates back from a provisional (edge-free) build so edge
	// weights can be derived from the jittered positions.
	prov := b.Build()
	gx, gy := prov.Coords()
	addEdge := func(u, v int32, gx, gy []float64) {
		dx := gx[u] - gx[v]
		dy := gy[u] - gy[v]
		length := math.Sqrt(dx*dx + dy*dy)
		detour := cfg.DetourLo + rng.Float64()*(cfg.DetourHi-cfg.DetourLo)
		_ = b.AddEdge(u, v, length*detour)
	}

	// Lattice edges, each kept with probability 1-DeleteFrac.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() >= cfg.DeleteFrac {
				addEdge(id(r, c), id(r, c+1), gx, gy)
			}
			if r+1 < rows && rng.Float64() >= cfg.DeleteFrac {
				addEdge(id(r, c), id(r+1, c), gx, gy)
			}
		}
	}
	// Diagonal shortcuts.
	nDiag := int(float64(rows*cols) * cfg.DiagonalFrac)
	for i := 0; i < nDiag; i++ {
		r := rng.Intn(rows - 1)
		c := rng.Intn(cols - 1)
		if rng.Intn(2) == 0 {
			addEdge(id(r, c), id(r+1, c+1), gx, gy)
		} else {
			addEdge(id(r, c+1), id(r+1, c), gx, gy)
		}
	}
	g := b.Build()
	g, _ = graph.LargestComponent(g)
	return g, nil
}

// Radial generates a ring-and-spoke "old town" network: rings of
// vertices around a center connected along rings and along spokes. It
// exercises non-grid topology in tests and examples.
func Radial(rings, spokes int, cfg Config) (*graph.Graph, error) {
	if rings < 1 || spokes < 3 {
		return nil, fmt.Errorf("gen: radial needs rings >= 1, spokes >= 3, got %d/%d", rings, spokes)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(rings*spokes+1, rings*spokes*2)
	center := b.AddVertex(0, 0)
	ids := make([][]int32, rings)
	for r := 0; r < rings; r++ {
		ids[r] = make([]int32, spokes)
		radius := float64(r+1) * cfg.CellSize
		for s := 0; s < spokes; s++ {
			angle := 2 * math.Pi * float64(s) / float64(spokes)
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.CellSize
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.CellSize
			ids[r][s] = b.AddVertex(radius*math.Cos(angle)+jx, radius*math.Sin(angle)+jy)
		}
	}
	prov := b.Build()
	gx, gy := prov.Coords()
	addEdge := func(u, v int32) {
		dx := gx[u] - gx[v]
		dy := gy[u] - gy[v]
		length := math.Sqrt(dx*dx + dy*dy)
		detour := cfg.DetourLo + rng.Float64()*(cfg.DetourHi-cfg.DetourLo)
		_ = b.AddEdge(u, v, length*detour)
	}
	for s := 0; s < spokes; s++ {
		addEdge(center, ids[0][s])
		for r := 0; r+1 < rings; r++ {
			addEdge(ids[r][s], ids[r+1][s])
		}
	}
	for r := 0; r < rings; r++ {
		for s := 0; s < spokes; s++ {
			addEdge(ids[r][s], ids[r][(s+1)%spokes])
		}
	}
	g := b.Build()
	g, _ = graph.LargestComponent(g)
	return g, nil
}
