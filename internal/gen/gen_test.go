package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestGridDeterministic(t *testing.T) {
	g1, err := Grid(12, 15, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Grid(12, 15, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different sizes")
	}
	for v := int32(0); v < int32(g1.NumVertices()); v++ {
		if g1.X(v) != g2.X(v) || g1.Y(v) != g2.Y(v) {
			t.Fatalf("vertex %d coordinates differ between runs", v)
		}
		ts1, ws1 := g1.Neighbors(v)
		ts2, ws2 := g2.Neighbors(v)
		if len(ts1) != len(ts2) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range ts1 {
			if ts1[i] != ts2[i] || ws1[i] != ws2[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestGridSeedsDiffer(t *testing.T) {
	g1, _ := Grid(10, 10, DefaultConfig(1))
	g2, _ := Grid(10, 10, DefaultConfig(2))
	same := g1.NumVertices() == g2.NumVertices() && g1.NumEdges() == g2.NumEdges()
	if same {
		// Sizes may coincide; coordinates must not.
		diff := false
		for v := int32(0); v < int32(g1.NumVertices()); v++ {
			if g1.X(v) != g2.X(v) {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGridConnectedAndValid(t *testing.T) {
	g, err := Grid(20, 20, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 300 {
		t.Fatalf("largest component too small: %d of 400", g.NumVertices())
	}
}

func TestGridWeightsRespectDetour(t *testing.T) {
	cfg := DefaultConfig(4)
	g, err := Grid(15, 15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			if u < v {
				continue
			}
			euclid := g.Euclidean(v, u)
			if ws[i] < euclid*cfg.DetourLo-1e-9 {
				t.Fatalf("edge (%d,%d) weight %v below Euclidean %v", v, u, ws[i], euclid)
			}
			if ws[i] > euclid*cfg.DetourHi+1e-9 {
				t.Fatalf("edge (%d,%d) weight %v above max detour of %v", v, u, ws[i], euclid*cfg.DetourHi)
			}
		}
	}
}

func TestGridRejectsBadArgs(t *testing.T) {
	if _, err := Grid(1, 10, DefaultConfig(1)); err == nil {
		t.Error("rows=1 accepted")
	}
	cfg := DefaultConfig(1)
	cfg.DeleteFrac = 1.5
	if _, err := Grid(5, 5, cfg); err == nil {
		t.Error("DeleteFrac=1.5 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.DetourLo = 0.5
	if _, err := Grid(5, 5, cfg); err == nil {
		t.Error("DetourLo<1 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Jitter = 0.9
	if _, err := Grid(5, 5, cfg); err == nil {
		t.Error("Jitter=0.9 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.CellSize = 0
	if _, err := Grid(5, 5, cfg); err == nil {
		t.Error("CellSize=0 accepted")
	}
}

func TestRadial(t *testing.T) {
	g, err := Radial(6, 12, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	want := 6*12 + 1
	if g.NumVertices() != want {
		t.Fatalf("radial vertices = %d, want %d", g.NumVertices(), want)
	}
	if _, err := Radial(0, 12, DefaultConfig(1)); err == nil {
		t.Error("rings=0 accepted")
	}
	if _, err := Radial(3, 2, DefaultConfig(1)); err == nil {
		t.Error("spokes=2 accepted")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 3 {
		t.Fatalf("want 3 presets, got %d", len(ps))
	}
	// Relative size ladder mirrors the paper: bj < fla < usw.
	if !(ps[0].Rows*ps[0].Cols < ps[1].Rows*ps[1].Cols && ps[1].Rows*ps[1].Cols < ps[2].Rows*ps[2].Cols) {
		t.Fatal("preset size ladder broken")
	}
	p, err := PresetByName("bj-mini")
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(g.NumVertices())-float64(p.Rows*p.Cols)) > 0.1*float64(p.Rows*p.Cols) {
		t.Fatalf("preset size %d far from nominal %d", g.NumVertices(), p.Rows*p.Cols)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestBuildScaled(t *testing.T) {
	p, _ := PresetByName("bj-mini")
	small, err := p.BuildScaled(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumVertices() >= p.Rows*p.Cols/4 {
		t.Fatalf("scaled-down preset not smaller: %d", small.NumVertices())
	}
	if _, err := p.BuildScaled(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := p.BuildScaled(0.001); err == nil {
		t.Fatal("collapsing scale accepted")
	}
}
