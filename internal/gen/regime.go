package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// RegimeConfig describes a deterministic weight perturbation applied on
// top of a generated network: a traffic regime. Real travel times shift
// with time of day (rush hour slows arterials far more than side
// streets) and with localized incidents (a crash multiplies weights in
// a small ball around it). The perturbation is purely multiplicative on
// edge weights — topology and coordinates are untouched — so a model
// trained on the base network keeps the same vertex space and only its
// distance labels move, which is exactly the drift scenario the
// autoheal loop is built to detect and repair.
//
// Edges are classified by weight percentile: the longest ArterialFrac
// of edges stand in for arterials/highways (diagonal shortcuts and
// highway links are the long edges in our synthetic networks), the
// rest are local streets. All randomness is derived from Seed, so the
// same (graph, config) pair always yields the same regime variant.
type RegimeConfig struct {
	// Seed drives incident placement and per-edge jitter.
	Seed int64
	// ArterialFrac is the fraction of edges (by descending weight)
	// classified as arterial. 0 disables the arterial/local split.
	ArterialFrac float64
	// ArterialFactor multiplies arterial edge weights (e.g. 1.9 for
	// rush hour congestion, 0.7 for free-flowing night traffic).
	// 0 defaults to 1.
	ArterialFactor float64
	// LocalFactor multiplies non-arterial edge weights. 0 defaults to 1.
	LocalFactor float64
	// Incidents is the number of localized incident spikes to place.
	Incidents int
	// IncidentRadius is the BFS hop radius of each incident ball.
	IncidentRadius int
	// IncidentFactor multiplies edges touching an incident ball.
	// 0 defaults to 1.
	IncidentFactor float64
	// JitterPct adds per-edge multiplicative noise in [1-J, 1+J],
	// breaking the uniformity of the class-wide factors the way real
	// congestion does. Must be < 1 so weights stay positive.
	JitterPct float64
}

func (c RegimeConfig) withDefaults() RegimeConfig {
	if c.ArterialFactor == 0 {
		c.ArterialFactor = 1
	}
	if c.LocalFactor == 0 {
		c.LocalFactor = 1
	}
	if c.IncidentFactor == 0 {
		c.IncidentFactor = 1
	}
	return c
}

func (c RegimeConfig) validate() error {
	switch {
	case c.ArterialFrac < 0 || c.ArterialFrac > 1:
		return fmt.Errorf("gen: ArterialFrac must be in [0,1], got %v", c.ArterialFrac)
	case !(c.ArterialFactor > 0) || math.IsInf(c.ArterialFactor, 0):
		return fmt.Errorf("gen: ArterialFactor must be positive finite, got %v", c.ArterialFactor)
	case !(c.LocalFactor > 0) || math.IsInf(c.LocalFactor, 0):
		return fmt.Errorf("gen: LocalFactor must be positive finite, got %v", c.LocalFactor)
	case c.Incidents < 0:
		return fmt.Errorf("gen: Incidents must be non-negative, got %d", c.Incidents)
	case c.IncidentRadius < 0:
		return fmt.Errorf("gen: IncidentRadius must be non-negative, got %d", c.IncidentRadius)
	case !(c.IncidentFactor > 0) || math.IsInf(c.IncidentFactor, 0):
		return fmt.Errorf("gen: IncidentFactor must be positive finite, got %v", c.IncidentFactor)
	case c.JitterPct < 0 || c.JitterPct >= 1:
		return fmt.Errorf("gen: JitterPct must be in [0,1), got %v", c.JitterPct)
	}
	return nil
}

// Regimes returns the named regime presets, patterned on the recurring
// traffic snapshots dynamic-road-network work clusters real histories
// into: a morning rush that congests arterials, a night regime where
// highways free-flow, and an incident regime with localized spikes.
func Regimes() map[string]RegimeConfig {
	return map[string]RegimeConfig{
		"rush-am": {
			ArterialFrac:   0.25,
			ArterialFactor: 1.9,
			LocalFactor:    1.15,
			JitterPct:      0.05,
		},
		"night": {
			ArterialFrac:   0.25,
			ArterialFactor: 0.7,
			LocalFactor:    0.9,
			JitterPct:      0.03,
		},
		"incident": {
			ArterialFrac:   0.20,
			ArterialFactor: 1.25,
			Incidents:      4,
			IncidentRadius: 3,
			IncidentFactor: 3.0,
			JitterPct:      0.05,
		},
	}
}

// RegimeByName looks up a named regime preset and stamps it with seed.
func RegimeByName(name string, seed int64) (RegimeConfig, bool) {
	c, ok := Regimes()[name]
	if !ok {
		return RegimeConfig{}, false
	}
	c.Seed = seed
	return c, true
}

// RegimeNames returns the preset names in sorted order, for usage text.
func RegimeNames() []string {
	names := make([]string, 0, len(Regimes()))
	for n := range Regimes() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Perturb applies a regime to g, returning a new graph with the same
// vertices, coordinates and edges but regime-scaled weights. The input
// graph is not modified. Determinism: class factors depend only on the
// edge's weight rank, incident placement on (Seed, |V|), and per-edge
// jitter on a hash of (endpoints, Seed) — never on iteration order.
func Perturb(g *graph.Graph, cfg RegimeConfig) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("gen: cannot perturb an empty graph")
	}

	// Arterial threshold: the weight at the (1-ArterialFrac) quantile.
	// Edges at or above it get the arterial factor.
	thresh := math.Inf(1)
	if cfg.ArterialFrac > 0 {
		ws := make([]float64, 0, g.NumEdges())
		for v := int32(0); v < int32(n); v++ {
			ts, wts := g.Neighbors(v)
			for i, t := range ts {
				if t > v {
					ws = append(ws, wts[i])
				}
			}
		}
		if len(ws) > 0 {
			sort.Float64s(ws)
			idx := int(float64(len(ws)) * (1 - cfg.ArterialFrac))
			if idx >= len(ws) {
				idx = len(ws) - 1
			}
			thresh = ws[idx]
		}
	}

	// Incident balls: BFS out to IncidentRadius hops from seeded random
	// centers; any edge touching a marked vertex is inside the spike.
	hot := make([]bool, n)
	if cfg.Incidents > 0 && cfg.IncidentRadius > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		depth := make([]int, n)
		for k := 0; k < cfg.Incidents; k++ {
			center := int32(rng.Intn(n))
			for i := range depth {
				depth[i] = -1
			}
			depth[center] = 0
			queue := []int32{center}
			hot[center] = true
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				if depth[v] >= cfg.IncidentRadius {
					continue
				}
				ts, _ := g.Neighbors(v)
				for _, t := range ts {
					if depth[t] < 0 {
						depth[t] = depth[v] + 1
						hot[t] = true
						queue = append(queue, t)
					}
				}
			}
		}
	}

	b := graph.NewBuilder(n, g.NumEdges())
	xs, ys := g.Coords()
	for i := 0; i < n; i++ {
		b.AddVertex(xs[i], ys[i])
	}
	for v := int32(0); v < int32(n); v++ {
		ts, wts := g.Neighbors(v)
		for i, t := range ts {
			if t <= v {
				continue
			}
			w := wts[i]
			factor := cfg.LocalFactor
			if cfg.ArterialFrac > 0 && w >= thresh {
				factor = cfg.ArterialFactor
			}
			if hot[v] || hot[t] {
				factor *= cfg.IncidentFactor
			}
			if cfg.JitterPct > 0 {
				factor *= 1 + (2*edgeHash01(v, t, cfg.Seed)-1)*cfg.JitterPct
			}
			if err := b.AddEdge(v, t, w*factor); err != nil {
				return nil, fmt.Errorf("gen: perturbed edge (%d,%d): %w", v, t, err)
			}
		}
	}
	return b.Build(), nil
}

// edgeHash01 maps an undirected edge and seed to a uniform value in
// [0, 1) via a splitmix64-style finalizer, so per-edge jitter is a pure
// function of the edge identity rather than of iteration order.
func edgeHash01(u, v int32, seed int64) float64 {
	x := uint64(uint32(u))<<32 | uint64(uint32(v))
	x ^= uint64(seed) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
