package sssp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bellmanFord is an independent reference implementation for testing.
func bellmanFord(g *graph.Graph, s int32) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[s] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for v := int32(0); v < int32(n); v++ {
			if dist[v] == Inf {
				continue
			}
			ts, ws := g.Neighbors(v)
			for i, u := range ts {
				if nd := dist[v] + ws[i]; nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func randomGraph(t *testing.T, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(rows, cols, gen.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	g := randomGraph(t, 11, 8, 9)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		want := bellmanFord(g, s)
		got := ws.FromSource(s, nil)
		for v := range want {
			if math.Abs(want[v]-got[v]) > 1e-9 {
				t.Fatalf("source %d vertex %d: dijkstra %v, bellman-ford %v", s, v, got[v], want[v])
			}
		}
	}
}

func TestDistanceEarlyExitMatchesFull(t *testing.T) {
	g := randomGraph(t, 12, 10, 10)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tt := int32(rng.Intn(g.NumVertices()))
		full := ws.FromSource(s, nil)
		got := ws.Distance(s, tt)
		if math.Abs(full[tt]-got) > 1e-9 {
			t.Fatalf("(%d,%d): early-exit %v, full %v", s, tt, got, full[tt])
		}
	}
}

func TestDistanceSelf(t *testing.T) {
	g := randomGraph(t, 13, 5, 5)
	ws := NewWorkspace(g)
	if d := ws.Distance(3, 3); d != 0 {
		t.Fatalf("Distance(v,v) = %v, want 0", d)
	}
	if d := ws.BidirectionalDistance(2, 2); d != 0 {
		t.Fatalf("BidirectionalDistance(v,v) = %v, want 0", d)
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	g := randomGraph(t, 14, 12, 12)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tt := int32(rng.Intn(g.NumVertices()))
		want := ws.Distance(s, tt)
		got := ws.BidirectionalDistance(s, tt)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): bidirectional %v, dijkstra %v", s, tt, got, want)
		}
	}
}

func TestAStarWithEuclideanHeuristic(t *testing.T) {
	g := randomGraph(t, 15, 12, 12)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tt := int32(rng.Intn(g.NumVertices()))
		want := ws.Distance(s, tt)
		// Euclidean distance is admissible because edge weights are at
		// least the segment's Euclidean length.
		h := func(v int32) float64 { return g.Euclidean(v, tt) }
		got, settled := ws.AStarDistance(s, tt, h)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): A* %v, dijkstra %v", s, tt, got, want)
		}
		if s != tt && settled <= 0 {
			t.Fatalf("A* settled %d vertices", settled)
		}
	}
}

func TestAStarNilHeuristic(t *testing.T) {
	g := randomGraph(t, 16, 6, 6)
	ws := NewWorkspace(g)
	want := ws.Distance(0, int32(g.NumVertices()-1))
	got, _ := ws.AStarDistance(0, int32(g.NumVertices()-1), nil)
	if math.Abs(want-got) > 1e-9 {
		t.Fatalf("A* nil heuristic %v, dijkstra %v", got, want)
	}
}

func TestPathReconstruction(t *testing.T) {
	g := randomGraph(t, 17, 8, 8)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tt := int32(rng.Intn(g.NumVertices()))
		d := ws.Distance(s, tt)
		path := ws.Path(s, tt)
		if s == tt {
			if len(path) != 1 || path[0] != s {
				t.Fatalf("self path = %v", path)
			}
			continue
		}
		if d == Inf {
			if path != nil {
				t.Fatalf("unreachable pair returned path %v", path)
			}
			continue
		}
		if path[0] != s || path[len(path)-1] != tt {
			t.Fatalf("path endpoints %v..%v want %v..%v", path[0], path[len(path)-1], s, tt)
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses non-edge (%d,%d)", path[i-1], path[i])
			}
			sum += w
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path length %v, distance %v", sum, d)
		}
	}
}

func TestUnreachable(t *testing.T) {
	// Two disconnected vertices (no edges): Distance should be Inf.
	b := graph.NewBuilder(3, 1)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	b.AddVertex(2, 0)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	ws := NewWorkspace(g)
	if d := ws.Distance(0, 2); d != Inf {
		t.Fatalf("Distance to isolated vertex = %v, want Inf", d)
	}
	if d := ws.BidirectionalDistance(0, 2); d != Inf {
		t.Fatalf("BidirectionalDistance to isolated vertex = %v, want Inf", d)
	}
	if d, _ := ws.AStarDistance(0, 2, nil); d != Inf {
		t.Fatalf("AStarDistance to isolated vertex = %v, want Inf", d)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	g := randomGraph(t, 18, 10, 10)
	ws := NewWorkspace(g)
	// Interleave all query kinds and verify against fresh workspaces.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tt := int32(rng.Intn(g.NumVertices()))
		fresh := NewWorkspace(g)
		want := fresh.Distance(s, tt)
		switch trial % 3 {
		case 0:
			if got := ws.Distance(s, tt); math.Abs(got-want) > 1e-9 {
				t.Fatalf("reused Distance = %v, want %v", got, want)
			}
		case 1:
			if got := ws.BidirectionalDistance(s, tt); math.Abs(got-want) > 1e-9 {
				t.Fatalf("reused BidirectionalDistance = %v, want %v", got, want)
			}
		case 2:
			if got, _ := ws.AStarDistance(s, tt, nil); math.Abs(got-want) > 1e-9 {
				t.Fatalf("reused AStarDistance = %v, want %v", got, want)
			}
		}
	}
}

func TestTruthOracleCaching(t *testing.T) {
	g := randomGraph(t, 19, 10, 10)
	o := NewTruthOracle(g, 2)
	ws := NewWorkspace(g)
	n := int32(g.NumVertices())

	// Repeated queries from the same source should incur one miss.
	for i := int32(0); i < 20; i++ {
		want := ws.Distance(0, i%n)
		got := o.Distance(0, i%n)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("oracle(0,%d) = %v, want %v", i%n, got, want)
		}
	}
	if q, m := o.Stats(); q != 20 || m != 1 {
		t.Fatalf("stats = %d queries %d misses, want 20/1", q, m)
	}

	// Reverse lookup reuses the cached source (undirected symmetry).
	want := ws.Distance(5, 0)
	if got := o.Distance(5, 0); math.Abs(want-got) > 1e-9 {
		t.Fatalf("oracle(5,0) = %v, want %v", got, want)
	}
	if _, m := o.Stats(); m != 1 {
		t.Fatalf("reverse lookup should hit cache, misses = %d", m)
	}

	// Eviction: fill beyond capacity, then the oldest source misses again.
	o.FromSource(1)
	o.FromSource(2) // evicts source 0 (capacity 2, LRU)
	_, before := o.Stats()
	o.FromSource(0)
	if _, after := o.Stats(); after != before+1 {
		t.Fatalf("expected eviction-induced miss, misses %d -> %d", before, after)
	}
}

func TestTruthOracleMatchesDijkstraRandom(t *testing.T) {
	g := randomGraph(t, 20, 9, 9)
	o := NewTruthOracle(g, 4)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tt := int32(rng.Intn(g.NumVertices()))
		want := ws.Distance(s, tt)
		got := o.Distance(s, tt)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("oracle(%d,%d) = %v, want %v", s, tt, got, want)
		}
	}
}

func BenchmarkDijkstraPointToPoint(b *testing.B) {
	g, err := gen.Grid(60, 60, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int32(rng.Intn(n))
		t := int32(rng.Intn(n))
		ws.Distance(s, t)
	}
}

func BenchmarkBidirectionalPointToPoint(b *testing.B) {
	g, err := gen.Grid(60, 60, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := int32(rng.Intn(n))
		t := int32(rng.Intn(n))
		ws.BidirectionalDistance(s, t)
	}
}

func TestDistanceToAll(t *testing.T) {
	g := randomGraph(t, 21, 10, 10)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		targets := make([]int32, 8)
		for i := range targets {
			targets[i] = int32(rng.Intn(g.NumVertices()))
		}
		targets[3] = s          // self target
		targets[5] = targets[4] // duplicate target
		got := ws.DistanceToAll(s, targets, nil)
		full := NewWorkspace(g).FromSource(s, nil)
		for i, tg := range targets {
			if math.Abs(got[i]-full[tg]) > 1e-9 {
				t.Fatalf("trial %d target %d (%d): %v vs %v", trial, i, tg, got[i], full[tg])
			}
		}
	}
	// Reuse with an output buffer.
	buf := make([]float64, 0, 4)
	got := ws.DistanceToAll(0, []int32{1, 2}, buf)
	if len(got) != 2 {
		t.Fatalf("buffer reuse returned %d values", len(got))
	}
	// Empty target list.
	if got := ws.DistanceToAll(0, nil, nil); len(got) != 0 {
		t.Fatalf("empty targets returned %v", got)
	}
}

func TestDistanceToAllUnreachable(t *testing.T) {
	b := graph.NewBuilder(3, 1)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	b.AddVertex(2, 0)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	ws := NewWorkspace(g)
	got := ws.DistanceToAll(0, []int32{1, 2}, nil)
	if got[0] != 1 || got[1] != Inf {
		t.Fatalf("got %v, want [1 Inf]", got)
	}
}
