// Package sssp implements the exact shortest-path searches the rest of
// the repository depends on: classic Dijkstra (the paper's slow
// baseline), early-exit and bidirectional point-to-point variants, and
// A* with a pluggable admissible heuristic.
//
// All searches run inside a reusable Workspace so the high-volume
// callers — ground-truth labeling of millions of training samples —
// do not allocate per query.
package sssp

import (
	"math"

	"repro/internal/graph"
	"repro/internal/pqueue"
)

// Inf is the distance reported for unreachable vertices.
const Inf = math.MaxFloat64

// Workspace holds the scratch state for searches over one graph.
// It is not safe for concurrent use; create one Workspace per goroutine.
type Workspace struct {
	g       *graph.Graph
	dist    []float64
	parent  []int32
	touched []int32
	heap    *pqueue.IndexedHeap

	// second search side for bidirectional queries
	distB    []float64
	touchedB []int32
	heapB    *pqueue.IndexedHeap
}

// NewWorkspace returns a Workspace for searches over g.
func NewWorkspace(g *graph.Graph) *Workspace {
	n := g.NumVertices()
	ws := &Workspace{
		g:      g,
		dist:   make([]float64, n),
		parent: make([]int32, n),
		heap:   pqueue.New(n),
		distB:  make([]float64, n),
		heapB:  pqueue.New(n),
	}
	for i := 0; i < n; i++ {
		ws.dist[i] = Inf
		ws.distB[i] = Inf
		ws.parent[i] = -1
	}
	return ws
}

// Graph returns the graph this workspace searches.
func (ws *Workspace) Graph() *graph.Graph { return ws.g }

func (ws *Workspace) reset() {
	for _, v := range ws.touched {
		ws.dist[v] = Inf
		ws.parent[v] = -1
	}
	ws.touched = ws.touched[:0]
	ws.heap.Reset()
}

func (ws *Workspace) resetB() {
	for _, v := range ws.touchedB {
		ws.distB[v] = Inf
	}
	ws.touchedB = ws.touchedB[:0]
	ws.heapB.Reset()
}

// Distance runs a point-to-point Dijkstra from s, stopping as soon as t
// is settled. It returns Inf if t is unreachable.
func (ws *Workspace) Distance(s, t int32) float64 {
	if s == t {
		return 0
	}
	ws.reset()
	ws.dist[s] = 0
	ws.touched = append(ws.touched, s)
	ws.heap.Push(s, 0)
	for ws.heap.Len() > 0 {
		v, d := ws.heap.Pop()
		if d > ws.dist[v] {
			continue
		}
		if v == t {
			return d
		}
		ts, wts := ws.g.Neighbors(v)
		for i, u := range ts {
			nd := d + wts[i]
			if nd < ws.dist[u] {
				if ws.dist[u] == Inf {
					ws.touched = append(ws.touched, u)
				}
				ws.dist[u] = nd
				ws.parent[u] = v
				ws.heap.Push(u, nd)
			}
		}
	}
	return Inf
}

// FromSource runs a full single-source Dijkstra from s and copies the
// distance array into out (allocating if out is nil or too small).
// Unreachable vertices get Inf.
func (ws *Workspace) FromSource(s int32, out []float64) []float64 {
	ws.reset()
	ws.dist[s] = 0
	ws.touched = append(ws.touched, s)
	ws.heap.Push(s, 0)
	for ws.heap.Len() > 0 {
		v, d := ws.heap.Pop()
		if d > ws.dist[v] {
			continue
		}
		ts, wts := ws.g.Neighbors(v)
		for i, u := range ts {
			nd := d + wts[i]
			if nd < ws.dist[u] {
				if ws.dist[u] == Inf {
					ws.touched = append(ws.touched, u)
				}
				ws.dist[u] = nd
				ws.parent[u] = v
				ws.heap.Push(u, nd)
			}
		}
	}
	n := ws.g.NumVertices()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	copy(out, ws.dist)
	return out
}

// DistanceToAll runs Dijkstra from s until every target is settled (or
// the graph is exhausted) and returns the distances in target order —
// far cheaper than a full SSSP when the targets cluster near s, the
// overfetch-and-rerank shape of dispatch workloads. Unreachable targets
// get Inf.
func (ws *Workspace) DistanceToAll(s int32, targets []int32, out []float64) []float64 {
	if cap(out) < len(targets) {
		out = make([]float64, len(targets))
	}
	out = out[:len(targets)]
	ws.reset()
	ws.dist[s] = 0
	ws.touched = append(ws.touched, s)
	ws.heap.Push(s, 0)
	remaining := 0
	pending := make(map[int32]int, len(targets))
	for i, t := range targets {
		if t == s {
			out[i] = 0
			continue
		}
		// The same target may appear twice; remember one slot and copy
		// at the end.
		if _, dup := pending[t]; !dup {
			pending[t] = i
			remaining++
		}
		out[i] = Inf
	}
	for ws.heap.Len() > 0 && remaining > 0 {
		v, d := ws.heap.Pop()
		if _, ok := pending[v]; ok {
			delete(pending, v)
			remaining--
		}
		ts, wts := ws.g.Neighbors(v)
		for i, u := range ts {
			nd := d + wts[i]
			if nd < ws.dist[u] {
				if ws.dist[u] == Inf {
					ws.touched = append(ws.touched, u)
				}
				ws.dist[u] = nd
				ws.heap.Push(u, nd)
			}
		}
	}
	for i, t := range targets {
		if t != s {
			out[i] = ws.dist[t]
		}
	}
	return out
}

// Path reconstructs, after a Distance call that settled t, the vertex
// sequence of the shortest path s..t found. It returns nil if t was not
// reached. The result is ordered source-first.
func (ws *Workspace) Path(s, t int32) []int32 {
	if s == t {
		return []int32{s}
	}
	if ws.dist[t] == Inf {
		return nil
	}
	var rev []int32
	for v := t; v != -1; v = ws.parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	if rev[len(rev)-1] != s {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BidirectionalDistance runs Dijkstra from both endpoints
// simultaneously, alternating the side with the smaller frontier key,
// and stops when the sides' radii prove the best meeting distance
// optimal. It returns Inf if t is unreachable.
func (ws *Workspace) BidirectionalDistance(s, t int32) float64 {
	if s == t {
		return 0
	}
	ws.reset()
	ws.resetB()
	ws.dist[s] = 0
	ws.touched = append(ws.touched, s)
	ws.heap.Push(s, 0)
	ws.distB[t] = 0
	ws.touchedB = append(ws.touchedB, t)
	ws.heapB.Push(t, 0)

	best := Inf
	for ws.heap.Len() > 0 || ws.heapB.Len() > 0 {
		var fKey, bKey float64 = Inf, Inf
		if ws.heap.Len() > 0 {
			_, fKey = ws.heap.Peek()
		}
		if ws.heapB.Len() > 0 {
			_, bKey = ws.heapB.Peek()
		}
		if fKey+bKey >= best {
			break
		}
		if fKey <= bKey {
			v, d := ws.heap.Pop()
			if d > ws.dist[v] {
				continue
			}
			if db := ws.distB[v]; db < Inf && d+db < best {
				best = d + db
			}
			ts, wts := ws.g.Neighbors(v)
			for i, u := range ts {
				nd := d + wts[i]
				if nd < ws.dist[u] {
					if ws.dist[u] == Inf {
						ws.touched = append(ws.touched, u)
					}
					ws.dist[u] = nd
					ws.heap.Push(u, nd)
				}
			}
		} else {
			v, d := ws.heapB.Pop()
			if d > ws.distB[v] {
				continue
			}
			if df := ws.dist[v]; df < Inf && d+df < best {
				best = d + df
			}
			ts, wts := ws.g.Neighbors(v)
			for i, u := range ts {
				nd := d + wts[i]
				if nd < ws.distB[u] {
					if ws.distB[u] == Inf {
						ws.touchedB = append(ws.touchedB, u)
					}
					ws.distB[u] = nd
					ws.heapB.Push(u, nd)
				}
			}
		}
	}
	return best
}

// Heuristic is an admissible lower bound on the remaining distance from
// v to the (implicit) target of an A* search.
type Heuristic func(v int32) float64

// AStarDistance runs A* from s to t with the given admissible
// heuristic. With a nil heuristic it degenerates to Dijkstra.
// It returns Inf if t is unreachable and the number of settled vertices
// (a proxy for search effort used by the ALT experiments).
func (ws *Workspace) AStarDistance(s, t int32, h Heuristic) (float64, int) {
	if s == t {
		return 0, 0
	}
	if h == nil {
		h = func(int32) float64 { return 0 }
	}
	ws.reset()
	ws.dist[s] = 0
	ws.touched = append(ws.touched, s)
	ws.heap.Push(s, h(s))
	settled := 0
	for ws.heap.Len() > 0 {
		// IndexedHeap uses decrease-key, so every popped entry is current.
		v, _ := ws.heap.Pop()
		settled++
		if v == t {
			return ws.dist[v], settled
		}
		d := ws.dist[v]
		ts, wts := ws.g.Neighbors(v)
		for i, u := range ts {
			nd := d + wts[i]
			if nd < ws.dist[u] {
				if ws.dist[u] == Inf {
					ws.touched = append(ws.touched, u)
				}
				ws.dist[u] = nd
				ws.parent[u] = v
				ws.heap.Push(u, nd+h(u))
			}
		}
	}
	return Inf, settled
}
