package sssp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// TestDistanceMetricProperties checks, on random graphs and vertex
// triples, that exact network distances satisfy the metric axioms the
// paper builds on in Section III-C: symmetry (undirected graphs) and
// the triangle inequality.
func TestDistanceMetricProperties(t *testing.T) {
	g, err := gen.Grid(12, 12, gen.DefaultConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(g)
	n := g.NumVertices()
	f := func(ar, br, cr uint16) bool {
		a := int32(int(ar) % n)
		b := int32(int(br) % n)
		c := int32(int(cr) % n)
		dab := ws.Distance(a, b)
		dba := ws.Distance(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		dac := ws.Distance(a, c)
		dcb := ws.Distance(c, b)
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFromSourceMonotoneAlongTree: a vertex's distance never exceeds
// any neighbor's distance plus the connecting edge (the Bellman
// optimality condition), and equals it along shortest-path-tree edges.
func TestFromSourceOptimalityCondition(t *testing.T) {
	g, err := gen.Grid(11, 11, gen.DefaultConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		dist := ws.FromSource(s, nil)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if dist[v] == Inf {
				continue
			}
			ts, wts := g.Neighbors(v)
			tight := v == s
			for i, u := range ts {
				if dist[v] > dist[u]+wts[i]+1e-9 {
					t.Fatalf("optimality violated at %d via %d", v, u)
				}
				if math.Abs(dist[v]-(dist[u]+wts[i])) < 1e-9 {
					tight = true
				}
			}
			if !tight {
				t.Fatalf("vertex %d has no tight predecessor", v)
			}
		}
	}
}

// TestBidirectionalAgreesProperty drives the bidirectional search with
// quick-generated pairs.
func TestBidirectionalAgreesProperty(t *testing.T) {
	g, err := gen.Radial(4, 18, gen.DefaultConfig(34))
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(g)
	n := g.NumVertices()
	f := func(ar, br uint16) bool {
		a := int32(int(ar) % n)
		b := int32(int(br) % n)
		return math.Abs(ws.Distance(a, b)-ws.BidirectionalDistance(a, b)) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
