package sssp

import "repro/internal/graph"

// TruthOracle serves exact shortest-path distances with an LRU cache of
// full single-source distance arrays. Training-sample generation asks
// for many pairs sharing a source (landmark-based selection makes this
// extreme: every sample's source is one of |U| landmarks), so caching
// whole SSSP trees turns labeling from one Dijkstra per sample into one
// Dijkstra per distinct source.
type TruthOracle struct {
	ws       *Workspace
	capacity int
	cache    map[int32][]float64
	order    []int32 // LRU order, least recent first
	queries  int64
	misses   int64
}

// NewTruthOracle returns an oracle over g caching up to capacity source
// distance arrays (each 8*|V| bytes). Capacity must be at least 1.
func NewTruthOracle(g *graph.Graph, capacity int) *TruthOracle {
	if capacity < 1 {
		capacity = 1
	}
	return &TruthOracle{
		ws:       NewWorkspace(g),
		capacity: capacity,
		cache:    make(map[int32][]float64, capacity),
	}
}

// Distance returns the exact network distance from s to t
// (Inf if unreachable).
func (o *TruthOracle) Distance(s, t int32) float64 {
	o.queries++
	if d, ok := o.cache[s]; ok {
		o.touch(s)
		return d[t]
	}
	if d, ok := o.cache[t]; ok {
		// Undirected graph: d(s,t) = d(t,s).
		o.touch(t)
		return d[s]
	}
	o.misses++
	d := o.ws.FromSource(s, nil)
	o.insert(s, d)
	return d[t]
}

// FromSource returns the full distance array from s, computing and
// caching it if needed. The returned slice is owned by the cache and
// must not be modified.
func (o *TruthOracle) FromSource(s int32) []float64 {
	o.queries++
	if d, ok := o.cache[s]; ok {
		o.touch(s)
		return d
	}
	o.misses++
	d := o.ws.FromSource(s, nil)
	o.insert(s, d)
	return d
}

// Stats reports the number of Distance/FromSource calls and how many
// required a fresh Dijkstra run.
func (o *TruthOracle) Stats() (queries, misses int64) { return o.queries, o.misses }

func (o *TruthOracle) touch(s int32) {
	for i, v := range o.order {
		if v == s {
			copy(o.order[i:], o.order[i+1:])
			o.order[len(o.order)-1] = s
			return
		}
	}
}

func (o *TruthOracle) insert(s int32, d []float64) {
	if len(o.order) >= o.capacity {
		evict := o.order[0]
		copy(o.order, o.order[1:])
		o.order = o.order[:len(o.order)-1]
		delete(o.cache, evict)
	}
	o.cache[s] = d
	o.order = append(o.order, s)
}
