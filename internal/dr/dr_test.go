package dr

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sample"
	"repro/internal/sssp"
)

func testData(t *testing.T) (*graph.Graph, []sample.Sample, []metrics.Pair) {
	t.Helper()
	g, err := gen.Grid(12, 12, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	oracle := sssp.NewTruthOracle(g, 64)
	rng := rand.New(rand.NewSource(2))
	train := sample.RandomPairs(g, 20000, 16, oracle, rng)
	valRaw := sample.RandomPairs(g, 500, 16, oracle, rng)
	val := make([]metrics.Pair, len(valRaw))
	for i, s := range valRaw {
		val[i] = metrics.Pair{S: s.S, T: s.T, Dist: s.Dist}
	}
	return g, train, val
}

func TestVariants(t *testing.T) {
	for _, p := range []int{1000, 10000, 100000} {
		cfg, err := Variant(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Hidden < 1 {
			t.Fatalf("variant %d has no hidden units", p)
		}
	}
	if _, err := Variant(12345, 1); err == nil {
		t.Fatal("unsupported variant accepted")
	}
}

func TestTrainBeatsCoordinateBaselines(t *testing.T) {
	g, train, val := testData(t)
	cfg, err := Variant(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EmbedDim = 32
	cfg.Epochs = 6
	m, err := Train(g, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drErr := metrics.Evaluate(metrics.EstimatorFunc(m.Estimate), val).MeanRel
	euclid := metrics.Evaluate(metrics.EstimatorFunc(g.Euclidean), val).MeanRel
	manhattan := metrics.Evaluate(metrics.EstimatorFunc(g.Manhattan), val).MeanRel
	// The paper's Figure 14 point: DR outperforms raw coordinate
	// heuristics once trained.
	if drErr >= euclid || drErr >= manhattan {
		t.Fatalf("DR %.3f not better than Euclidean %.3f / Manhattan %.3f", drErr, euclid, manhattan)
	}
	if drErr > 0.25 {
		t.Fatalf("DR error %.3f implausibly high", drErr)
	}
	if m.NumParams() < 5000 {
		t.Fatalf("DR-10K has %d params", m.NumParams())
	}
}

func TestEstimateProperties(t *testing.T) {
	g, train, _ := testData(t)
	cfg, err := Variant(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EmbedDim = 8
	cfg.Epochs = 1
	m, err := Train(g, train[:1000], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Estimate(3, 3); d != 0 {
		t.Fatalf("self estimate %v", d)
	}
	for i := 0; i < 50; i++ {
		if d := m.Estimate(int32(i), int32(i*2+1)); d < 0 {
			t.Fatalf("negative estimate %v", d)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	g, train, _ := testData(t)
	if _, err := Train(g, nil, Config{Hidden: 5}); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := Train(g, train, Config{Hidden: 0}); err == nil {
		t.Error("Hidden=0 accepted")
	}
	zeroDist := []sample.Sample{{S: 0, T: 1, Dist: 0}}
	if _, err := Train(g, zeroDist, Config{Hidden: 5}); err == nil {
		t.Error("all-zero distances accepted")
	}
}
