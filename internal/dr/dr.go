// Package dr implements the paper's DeepWalk-Regression ablation
// baseline (Section VII-B1): a pretrained DeepWalk embedding is frozen,
// each vertex's feature vector is its embedding concatenated with its
// coordinates, and a small fully-connected network regresses the
// shortest-path distance from [v_s, v_t, |v_s - v_t|]. The paper's
// three variants DR-1K, DR-10K and DR-100K differ only in the hidden
// width (≈1K, 10K, 100K parameters).
package dr

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/deepwalk"
	"repro/internal/emb"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
)

// Config controls a DR build.
type Config struct {
	// EmbedDim is the DeepWalk dimension (paper: 64).
	EmbedDim int
	// Hidden is the regressor's hidden width; see Variant.
	Hidden int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Epochs is the number of passes over the training samples
	// (default 4).
	Epochs int
	// Seed fixes DeepWalk and regressor initialization.
	Seed int64
}

// Variant returns the paper's DR-1K / DR-10K / DR-100K configuration.
// params must be one of 1000, 10000, 100000.
func Variant(params int, seed int64) (Config, error) {
	cfg := Config{EmbedDim: 64, LR: 1e-3, Epochs: 4, Seed: seed}
	// Input width is 3*(EmbedDim+2) = 198; parameter count of one
	// hidden layer is ~ (in+2)*h + 1.
	switch params {
	case 1000:
		cfg.Hidden = 5
	case 10000:
		cfg.Hidden = 50
	case 100000:
		cfg.Hidden = 500
	default:
		return Config{}, fmt.Errorf("dr: unsupported variant %d (want 1000, 10000 or 100000)", params)
	}
	return cfg, nil
}

// Model is a trained DR distance estimator.
type Model struct {
	g     *graph.Graph
	dw    *emb.Matrix
	mlp   *nn.MLP
	scale float64 // distance normalizer
	// Cached bounding box for coordinate normalization.
	minX, minY, spanX, spanY float64
	// Feature scratch.
	feat []float64
}

// Train fits a DR model on the given labeled samples, training a fresh
// DeepWalk embedding. When fitting several regressors over the same
// graph (the Figure 14 sweep), train DeepWalk once and use
// TrainWithEmbedding instead — the embedding depends only on the graph
// and seed, not on the samples.
func Train(g *graph.Graph, samples []sample.Sample, cfg Config) (*Model, error) {
	if cfg.EmbedDim == 0 {
		cfg.EmbedDim = 64
	}
	dwCfg := deepwalk.DefaultConfig(cfg.Seed)
	dwCfg.Dim = cfg.EmbedDim
	dw, err := deepwalk.Train(g, dwCfg)
	if err != nil {
		return nil, err
	}
	return TrainWithEmbedding(g, dw, samples, cfg)
}

// TrainWithEmbedding fits the DR regressor over a pretrained (frozen)
// DeepWalk embedding.
func TrainWithEmbedding(g *graph.Graph, dw *emb.Matrix, samples []sample.Sample, cfg Config) (*Model, error) {
	if cfg.EmbedDim == 0 {
		cfg.EmbedDim = 64
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 4
	}
	if cfg.Hidden < 1 {
		return nil, fmt.Errorf("dr: Hidden must be >= 1, got %d", cfg.Hidden)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("dr: no training samples")
	}
	if dw == nil || dw.Rows() != g.NumVertices() || dw.Dim() != cfg.EmbedDim {
		return nil, fmt.Errorf("dr: embedding shape mismatch")
	}

	featDim := 3 * (cfg.EmbedDim + 2)
	mlp, err := nn.New([]int{featDim, cfg.Hidden, 1}, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	var maxDist float64
	for _, s := range samples {
		if s.Dist > maxDist {
			maxDist = s.Dist
		}
	}
	if maxDist <= 0 {
		return nil, fmt.Errorf("dr: all sample distances are zero")
	}

	m := &Model{g: g, dw: dw, mlp: mlp, scale: maxDist, feat: make([]float64, featDim)}
	var maxX, maxY float64
	m.minX, m.minY, maxX, maxY = g.BoundingBox()
	m.spanX = maxX - m.minX
	if m.spanX <= 0 {
		m.spanX = 1
	}
	m.spanY = maxY - m.minY
	if m.spanY <= 0 {
		m.spanY = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	perm := make([]int, len(samples))
	for i := range perm {
		perm[i] = i
	}
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, pi := range perm {
			s := samples[pi]
			m.features(s.S, s.T)
			m.mlp.Step(m.feat, s.Dist/m.scale, cfg.LR)
		}
	}
	return m, nil
}

// features fills m.feat with [v_s, v_t, |v_s - v_t|], each block being
// the DeepWalk vector extended by normalized coordinates.
func (m *Model) features(s, t int32) {
	d := m.dw.Dim()
	block := d + 2
	vs := m.dw.Row(s)
	vt := m.dw.Row(t)
	for i := 0; i < d; i++ {
		m.feat[i] = vs[i]
		m.feat[block+i] = vt[i]
		m.feat[2*block+i] = math.Abs(vs[i] - vt[i])
	}
	sx := (m.g.X(s) - m.minX) / m.spanX
	sy := (m.g.Y(s) - m.minY) / m.spanY
	tx := (m.g.X(t) - m.minX) / m.spanX
	ty := (m.g.Y(t) - m.minY) / m.spanY
	m.feat[d] = sx
	m.feat[d+1] = sy
	m.feat[block+d] = tx
	m.feat[block+d+1] = ty
	m.feat[2*block+d] = math.Abs(sx - tx)
	m.feat[2*block+d+1] = math.Abs(sy - ty)
}

// Estimate returns the regressed distance for (s, t). Not safe for
// concurrent use (shared feature scratch).
func (m *Model) Estimate(s, t int32) float64 {
	if s == t {
		return 0
	}
	m.features(s, t)
	out := m.mlp.Forward(m.feat) * m.scale
	if out < 0 {
		out = 0
	}
	return out
}

// NumParams returns the regressor's parameter count (the paper's
// variant label).
func (m *Model) NumParams() int { return m.mlp.NumParams() }
