package emb

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/vecmath"
)

// The DESIGN.md ablation: querying the flattened |V| x d matrix versus
// summing ancestor locals on the fly. Flattening wins by an order of
// magnitude, which is why Algorithm 1 materializes the global matrix.

func benchSetup(b *testing.B) (*Hier, *Matrix, int) {
	b.Helper()
	g, err := gen.Grid(30, 30, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	hh := NewHier(h, 64)
	rng := rand.New(rand.NewSource(2))
	hh.Local.RandomInit(rng, 0.01)
	return hh, hh.Flatten(), g.NumVertices()
}

func BenchmarkQueryFlattened(b *testing.B) {
	_, flat, n := benchSetup(b)
	rng := rand.New(rand.NewSource(3))
	ss := make([]int32, 1024)
	ts := make([]int32, 1024)
	for i := range ss {
		ss[i] = int32(rng.Intn(n))
		ts[i] = int32(rng.Intn(n))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		j := i & 1023
		sink += vecmath.L1(flat.Row(ss[j]), flat.Row(ts[j]))
	}
	_ = sink
}

func BenchmarkQueryAncestorSum(b *testing.B) {
	hh, _, n := benchSetup(b)
	rng := rand.New(rand.NewSource(3))
	ss := make([]int32, 1024)
	ts := make([]int32, 1024)
	for i := range ss {
		ss[i] = int32(rng.Intn(n))
		ts[i] = int32(rng.Intn(n))
	}
	vs := make([]float64, 64)
	vt := make([]float64, 64)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		j := i & 1023
		hh.GlobalInto(vs, ss[j])
		hh.GlobalInto(vt, ts[j])
		sink += vecmath.L1(vs, vt)
	}
	_ = sink
}

func BenchmarkMatrix32L1(b *testing.B) {
	_, flat, n := benchSetup(b)
	c := flat.Compact()
	rng := rand.New(rand.NewSource(3))
	ss := make([]int32, 1024)
	ts := make([]int32, 1024)
	for i := range ss {
		ss[i] = int32(rng.Intn(n))
		ts[i] = int32(rng.Intn(n))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		j := i & 1023
		sink += c.L1(ss[j], ts[j])
	}
	_ = sink
}
