package emb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Matrix32 is a float32 embedding matrix: half the memory of Matrix at
// a quantization cost far below RNE's training error, so it is the
// deployment-friendly index format (an extension over the paper, which
// stores float64).
type Matrix32 struct {
	rows, d int
	data    []float32
}

// Compact converts m to float32 storage.
func (m *Matrix) Compact() *Matrix32 {
	c := &Matrix32{rows: m.rows, d: m.d, data: make([]float32, len(m.data))}
	for i, x := range m.data {
		c.data[i] = float32(x)
	}
	return c
}

// Rows returns the number of rows.
func (m *Matrix32) Rows() int { return m.rows }

// Dim returns the embedding dimension d.
func (m *Matrix32) Dim() int { return m.d }

// Row returns row i, aliasing the matrix storage.
func (m *Matrix32) Row(i int32) []float32 {
	off := int(i) * m.d
	return m.data[off : off+m.d]
}

// L1 returns the Manhattan distance between rows i and j.
func (m *Matrix32) L1(i, j int32) float64 {
	a := m.Row(i)
	b := m.Row(j)
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] // hoist the bounds check out of the loop
	var s float32
	for k, ak := range a {
		s += abs32(ak - b[k])
	}
	return float64(s)
}

// abs32 clears the sign bit; branch-free so the L1 kernel vectorizes.
func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

const matrix32Magic = "RNEM32\n"

// WriteTo serializes the matrix in a compact binary format.
func (m *Matrix32) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(matrix32Magic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	hdr := []int64{int64(m.rows), int64(m.d)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return written, err
	}
	written += 16
	if err := binary.Write(bw, binary.LittleEndian, m.data); err != nil {
		return written, err
	}
	written += int64(4 * len(m.data))
	return written, bw.Flush()
}

// ReadMatrix32 deserializes a matrix written by Matrix32.WriteTo.
func ReadMatrix32(r io.Reader) (*Matrix32, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(matrix32Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != matrix32Magic {
		return nil, fmt.Errorf("emb: bad magic %q", magic)
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	rows, d := int(hdr[0]), int(hdr[1])
	if rows < 0 || d <= 0 || rows > 1<<31 || d > 1<<20 {
		return nil, fmt.Errorf("emb: implausible matrix shape %dx%d", rows, d)
	}
	m := &Matrix32{rows: rows, d: d, data: make([]float32, rows*d)}
	if err := binary.Read(br, binary.LittleEndian, m.data); err != nil {
		return nil, err
	}
	return m, nil
}
