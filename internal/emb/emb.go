// Package emb holds the embedding matrices of the RNE models: the flat
// |V| x d vertex matrix of Section III and the hierarchical local
// embedding of Section IV (one local vector per partition-tree node,
// with a vertex's global embedding being the sum of its ancestors'
// local vectors).
package emb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/partition"
	"repro/internal/vecmath"
)

// Matrix is a dense rows x d embedding matrix stored row-major in one
// allocation.
type Matrix struct {
	rows, d int
	data    []float64
}

// NewMatrix returns a zeroed rows x d matrix.
func NewMatrix(rows, d int) *Matrix {
	return &Matrix{rows: rows, d: d, data: make([]float64, rows*d)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Dim returns the embedding dimension d.
func (m *Matrix) Dim() int { return m.d }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int32) []float64 {
	off := int(i) * m.d
	return m.data[off : off+m.d]
}

// Data returns the backing storage (row-major). It aliases the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// RandomInit fills the matrix with uniform values in [-scale, scale].
func (m *Matrix) RandomInit(rng *rand.Rand, scale float64) {
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.d)
	copy(c.data, m.data)
	return c
}

// Distance returns the L_p distance between rows i and j.
func (m *Matrix) Distance(i, j int32, p float64) float64 {
	return vecmath.Lp(m.Row(i), m.Row(j), p)
}

const matrixMagic = "RNEM1\n"

// MatrixFileSize reports the exact number of bytes WriteTo emits for a
// rows x d matrix, letting container formats (model files, checkpoints)
// put a payload length in their header without buffering the payload.
func MatrixFileSize(rows, d int) int64 {
	return int64(len(matrixMagic)) + 16 + 8*int64(rows)*int64(d)
}

// WriteTo serializes the matrix in a compact binary format.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(matrixMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	hdr := []int64{int64(m.rows), int64(m.d)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return written, err
	}
	written += 16
	if err := binary.Write(bw, binary.LittleEndian, m.data); err != nil {
		return written, err
	}
	written += int64(8 * len(m.data))
	return written, bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(matrixMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != matrixMagic {
		return nil, fmt.Errorf("emb: bad magic %q", magic)
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	rows, d := int(hdr[0]), int(hdr[1])
	if rows < 0 || d <= 0 || rows > 1<<31 || d > 1<<20 {
		return nil, fmt.Errorf("emb: implausible matrix shape %dx%d", rows, d)
	}
	m := NewMatrix(rows, d)
	if err := binary.Read(br, binary.LittleEndian, m.data); err != nil {
		return nil, err
	}
	return m, nil
}

// Hier couples a partition hierarchy with a local embedding matrix (one
// row per tree node). It implements the hierarchical RNE model: the
// global embedding of vertex v is the sum of Local rows over anc(v).
type Hier struct {
	H     *partition.Hierarchy
	Local *Matrix
}

// NewHier returns a hierarchical model with zeroed local embeddings of
// dimension d over h.
func NewHier(h *partition.Hierarchy, d int) *Hier {
	return &Hier{H: h, Local: NewMatrix(h.NumNodes(), d)}
}

// GlobalInto sums the local embeddings of v's ancestors into dst, which
// must have length Dim. It returns dst.
func (hh *Hier) GlobalInto(dst []float64, v int32) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	for _, node := range hh.H.Ancestors(v) {
		vecmath.Sum(dst, hh.Local.Row(node))
	}
	return dst
}

// NodeGlobalInto sums the local embeddings on the root..node path into
// dst (used by the tree index, whose internal nodes also need global
// positions). Summation runs root-first so results are bit-identical
// with GlobalInto on vertex nodes. It returns dst.
func (hh *Hier) NodeGlobalInto(dst []float64, node int32) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	var path [64]int32
	k := 0
	for n := node; n >= 0 && k < len(path); n = hh.H.Parent(n) {
		path[k] = n
		k++
	}
	for i := k - 1; i >= 0; i-- {
		vecmath.Sum(dst, hh.Local.Row(path[i]))
	}
	return dst
}

// Flatten materializes the global |V| x d vertex matrix (Algorithm 1,
// lines 12–13).
func (hh *Hier) Flatten() *Matrix {
	n := hh.H.Graph().NumVertices()
	out := NewMatrix(n, hh.Local.Dim())
	for v := int32(0); v < int32(n); v++ {
		hh.GlobalInto(out.Row(v), v)
	}
	return out
}
