package emb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/vecmath"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5, 3)
	if m.Rows() != 5 || m.Dim() != 3 {
		t.Fatalf("shape %dx%d, want 5x3", m.Rows(), m.Dim())
	}
	r := m.Row(2)
	r[0], r[1], r[2] = 1, 2, 3
	if m.Data()[6] != 1 || m.Data()[8] != 3 {
		t.Fatal("Row does not alias storage")
	}
	if d := m.Distance(2, 0, 1); d != 6 {
		t.Fatalf("Distance = %v, want 6", d)
	}
}

func TestMatrixRandomInitBounds(t *testing.T) {
	m := NewMatrix(10, 8)
	rng := rand.New(rand.NewSource(1))
	m.RandomInit(rng, 0.25)
	nonzero := false
	for _, x := range m.Data() {
		if math.Abs(x) > 0.25 {
			t.Fatalf("init value %v exceeds scale", x)
		}
		if x != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("init left matrix all zeros")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(0)[0] = 7
	c := m.Clone()
	c.Row(0)[0] = 9
	if m.Row(0)[0] != 7 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(17, 5)
	m.RandomInit(rng, 1)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Rows() != m.Rows() || m2.Dim() != m.Dim() {
		t.Fatalf("shape changed: %dx%d", m2.Rows(), m2.Dim())
	}
	for i := range m.Data() {
		if m.Data()[i] != m2.Data()[i] {
			t.Fatalf("data changed at %d", i)
		}
	}
}

func TestReadMatrixRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader([]byte("not a matrix at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadMatrix(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestHierGlobalIsAncestorSum(t *testing.T) {
	g, err := gen.Grid(12, 12, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	hh := NewHier(h, 4)
	rng := rand.New(rand.NewSource(4))
	hh.Local.RandomInit(rng, 1)

	dst := make([]float64, 4)
	for v := int32(0); v < int32(g.NumVertices()); v += 13 {
		hh.GlobalInto(dst, v)
		want := make([]float64, 4)
		for _, node := range h.Ancestors(v) {
			vecmath.Sum(want, hh.Local.Row(node))
		}
		for i := range dst {
			if math.Abs(dst[i]-want[i]) > 1e-12 {
				t.Fatalf("vertex %d dim %d: %v vs %v", v, i, dst[i], want[i])
			}
		}
	}
}

func TestHierNodeGlobalMatchesVertexGlobal(t *testing.T) {
	g, err := gen.Grid(10, 10, gen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	hh := NewHier(h, 3)
	rng := rand.New(rand.NewSource(6))
	hh.Local.RandomInit(rng, 1)

	a := make([]float64, 3)
	b := make([]float64, 3)
	for v := int32(0); v < int32(g.NumVertices()); v += 7 {
		hh.GlobalInto(a, v)
		hh.NodeGlobalInto(b, h.VertexNode(v))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: GlobalInto %v != NodeGlobalInto %v", v, a, b)
			}
		}
	}
}

func TestHierFlatten(t *testing.T) {
	g, err := gen.Grid(9, 9, gen.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	hh := NewHier(h, 6)
	rng := rand.New(rand.NewSource(8))
	hh.Local.RandomInit(rng, 1)

	flat := hh.Flatten()
	if flat.Rows() != g.NumVertices() || flat.Dim() != 6 {
		t.Fatalf("flatten shape %dx%d", flat.Rows(), flat.Dim())
	}
	dst := make([]float64, 6)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		hh.GlobalInto(dst, v)
		row := flat.Row(v)
		for i := range dst {
			if dst[i] != row[i] {
				t.Fatalf("vertex %d flatten mismatch", v)
			}
		}
	}

	// Flattened L1 distances must equal on-the-fly hierarchical ones.
	va := make([]float64, 6)
	vb := make([]float64, 6)
	for trial := 0; trial < 20; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		u := int32(rng.Intn(g.NumVertices()))
		hh.GlobalInto(va, s)
		hh.GlobalInto(vb, u)
		want := vecmath.L1(va, vb)
		got := vecmath.L1(flat.Row(s), flat.Row(u))
		if math.Abs(want-got) > 1e-12 {
			t.Fatalf("(%d,%d): flat %v hier %v", s, u, got, want)
		}
	}
}

func TestReadMatrixTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(8, 4)
	m.RandomInit(rng, 1)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point must fail cleanly, never panic.
	for _, cut := range []int{0, 3, len(matrixMagic), len(matrixMagic) + 8, len(full) - 9, len(full) - 1} {
		if _, err := ReadMatrix(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadMatrix32Truncated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMatrix(6, 3)
	m.RandomInit(rng, 1)
	c := m.Compact()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 4, len(full) - 5, len(full) - 1} {
		if _, err := ReadMatrix32(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Round trip agrees with the source.
	c2, err := ReadMatrix32(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < int32(c.Rows()); i++ {
		for j := int32(0); j < int32(c.Rows()); j++ {
			if c.L1(i, j) != c2.L1(i, j) {
				t.Fatal("round trip changed distances")
			}
		}
	}
}
