package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/emb"
	"repro/internal/sample"
)

func finiteMatrix(t *testing.T, m *emb.Matrix, when string) {
	t.Helper()
	for i, v := range m.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: non-finite value %v at parameter %d", when, v, i)
		}
	}
}

func poisonedSamples() []sample.Sample {
	return []sample.Sample{
		{S: 0, T: 1, Dist: 1},
		{S: 1, T: 2, Dist: math.NaN()},
		{S: 0, T: 2, Dist: math.Inf(1)},
		{S: 2, T: 3, Dist: math.Inf(-1)},
		{S: 0, T: 3, Dist: 4},
	}
}

// One NaN label used to poison both endpoint rows and spread from
// there; FlatStep must skip and count non-finite samples instead.
func TestFlatStepSkipsNonFiniteSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := emb.NewMatrix(4, 8)
	m.RandomInit(rng, 0.01)
	ref := m.Clone()

	if got := FlatStep(m, poisonedSamples(), 0.01, 1, 1); got != 3 {
		t.Fatalf("skipped = %d, want 3", got)
	}
	finiteMatrix(t, m, "after FlatStep over poisoned batch")

	// The finite samples must still have trained: same result as a batch
	// with the poisoned entries removed.
	clean := []sample.Sample{{S: 0, T: 1, Dist: 1}, {S: 0, T: 3, Dist: 4}}
	if got := FlatStep(ref, clean, 0.01, 1, 1); got != 0 {
		t.Fatalf("clean batch skipped %d", got)
	}
	for i, v := range m.Data() {
		if v != ref.Data()[i] {
			t.Fatalf("parameter %d: poisoned-batch result %v != clean-batch result %v", i, v, ref.Data()[i])
		}
	}
}

func TestFlatStepAdamSkipsNonFiniteSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := emb.NewMatrix(4, 8)
	m.RandomInit(rng, 0.01)
	adam := NewAdam(4, 8)
	if got := FlatStepAdam(m, adam, poisonedSamples(), 0.01, 1, 1); got != 3 {
		t.Fatalf("skipped = %d, want 3", got)
	}
	finiteMatrix(t, m, "after FlatStepAdam over poisoned batch")
}

func TestAdamResetClearsMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := emb.NewMatrix(4, 8)
	m.RandomInit(rng, 0.01)
	adam := NewAdam(4, 8)
	samples := []sample.Sample{{S: 0, T: 1, Dist: 1}, {S: 1, T: 2, Dist: 2}}
	FlatStepAdam(m, adam, samples, 0.01, 1, 1)

	fresh := NewAdam(4, 8)
	adam.Reset()
	m2 := m.Clone()
	FlatStepAdam(m, adam, samples, 0.01, 1, 1)
	FlatStepAdam(m2, fresh, samples, 0.01, 1, 1)
	for i, v := range m.Data() {
		if v != m2.Data()[i] {
			t.Fatalf("parameter %d: reset Adam stepped to %v, fresh Adam to %v", i, v, m2.Data()[i])
		}
	}
}
