// Package train implements the SGD procedures of the paper: Function
// Training (flat vertex embedding, Section III-D) and Function
// TrainingHier (hierarchical local embeddings with per-level learning
// rates, Section IV-B), plus the level learning-rate schedule of
// Algorithm 1.
//
// Distances are normalized by a caller-supplied scale (typically the
// network diameter) so learning rates are graph-independent; the model
// multiplies the scale back at query time. The paper trains raw
// distances under TensorFlow's adaptive optimizers — plain SGD needs
// the normalization to stay stable, and the substitution is
// value-preserving because the L1 metric is positively homogeneous.
package train

import (
	"math"

	"repro/internal/emb"
	"repro/internal/sample"
	"repro/internal/vecmath"
)

// errClamp bounds the residual fed into an update. Normalized target
// distances live in [0, 1], so residuals beyond ±4 only occur when the
// iterate has wandered; clamping lets SGD recover instead of
// overshooting into divergence.
const errClamp = 4.0

func clampErr(err float64) float64 {
	if err > errClamp {
		return errClamp
	}
	if err < -errClamp {
		return -errClamp
	}
	return err
}

// usable reports whether a sample carries a finite target distance. A
// single NaN or Inf label would poison both endpoint rows (NaN
// residuals pass the clamp untouched) and from there spread through
// every later update, so non-finite samples are skipped and counted
// rather than trained on; callers surface the count through build
// statistics.
func usable(smp sample.Sample) bool {
	return !math.IsNaN(smp.Dist) && !math.IsInf(smp.Dist, 0)
}

// FlatStep performs one SGD pass of Function Training over samples on
// the flat vertex matrix m: for each (v_s, v_t, φ) it descends the
// squared error of the L_p estimate with learning rate lr. scale
// divides the target distances. It returns the number of samples
// skipped for carrying non-finite distances.
func FlatStep(m *emb.Matrix, samples []sample.Sample, lr, p, scale float64) (skipped int) {
	d := m.Dim()
	grad := make([]float64, d)
	for _, smp := range samples {
		if !usable(smp) {
			skipped++
			continue
		}
		rs := m.Row(smp.S)
		rt := m.Row(smp.T)
		phiHat := vecmath.Lp(rs, rt, p)
		err := clampErr(phiHat - smp.Dist/scale)
		if err == 0 {
			continue
		}
		vecmath.LpGrad(grad, rs, rt, p, phiHat)
		// dL/drs = 2*err*grad, dL/drt = -2*err*grad
		step := lr * 2 * err
		vecmath.AddScaled(rs, grad, -step)
		vecmath.AddScaled(rt, grad, step)
	}
	return skipped
}

// HierStep performs one SGD pass of Function TrainingHier over samples
// on the hierarchical model hh. lrByLevel[l] is α_l, the learning rate
// applied to local embeddings at tree depth l; levels with zero rate
// are frozen. scale divides the target distances.
//
// Ancestors shared by both endpoints receive exactly cancelling
// gradients in the paper's formulation, so they are skipped here — the
// resulting parameters are identical, with less work.
//
// It returns the number of samples skipped for carrying non-finite
// distances.
func HierStep(hh *emb.Hier, lrByLevel []float64, samples []sample.Sample, p, scale float64) (skipped int) {
	d := hh.Local.Dim()
	vs := make([]float64, d)
	vt := make([]float64, d)
	grad := make([]float64, d)
	h := hh.H
	for _, smp := range samples {
		if !usable(smp) {
			skipped++
			continue
		}
		ancS := h.Ancestors(smp.S)
		ancT := h.Ancestors(smp.T)
		hh.GlobalInto(vs, smp.S)
		hh.GlobalInto(vt, smp.T)
		phiHat := vecmath.Lp(vs, vt, p)
		err := clampErr(phiHat - smp.Dist/scale)
		if err == 0 {
			continue
		}
		vecmath.LpGrad(grad, vs, vt, p, phiHat)
		step := 2 * err

		// Skip the common ancestor prefix (cancelled gradients).
		common := 0
		for common < len(ancS) && common < len(ancT) && ancS[common] == ancT[common] {
			common++
		}
		for _, node := range ancS[common:] {
			if lr := nodeRate(h, node, lrByLevel); lr != 0 {
				vecmath.AddScaled(hh.Local.Row(node), grad, -lr*step)
			}
		}
		for _, node := range ancT[common:] {
			if lr := nodeRate(h, node, lrByLevel); lr != 0 {
				vecmath.AddScaled(hh.Local.Row(node), grad, lr*step)
			}
		}
	}
	return skipped
}

// nodeRate resolves the learning rate of a tree node. The hierarchy
// can be ragged (small branches bottom out early), so vertex nodes
// always take the deepest level's rate regardless of their depth: the
// "vertices level" of the paper is the set of vertex nodes, not a
// geometric depth.
func nodeRate(h hierLike, node int32, lrByLevel []float64) float64 {
	lvl := int(h.Depth(node))
	if h.IsVertexNode(node) {
		lvl = len(lrByLevel) - 1
	}
	if lvl < 0 || lvl >= len(lrByLevel) {
		return 0
	}
	return lrByLevel[lvl]
}

// hierLike is the slice of partition.Hierarchy behaviour nodeRate needs.
type hierLike interface {
	Depth(node int32) int32
	IsVertexNode(node int32) bool
}

// LevelRates returns the Algorithm 1 learning-rate schedule for the
// step focused on level lev: α_l = α0 / (|l - lev| + 1) for levels
// 0..maxLevel. Level 0 (the root, whose local embedding cancels in
// every distance) is zeroed.
func LevelRates(alpha0 float64, lev, maxLevel int) []float64 {
	out := make([]float64, maxLevel+1)
	for l := 1; l <= maxLevel; l++ {
		diff := l - lev
		if diff < 0 {
			diff = -diff
		}
		out[l] = alpha0 / float64(diff+1)
	}
	return out
}

// VertexOnlyRates returns the phase-②/③ schedule: every level frozen
// except the deepest (vertex) level, trained at alpha.
func VertexOnlyRates(alpha float64, maxLevel int) []float64 {
	out := make([]float64, maxLevel+1)
	out[maxLevel] = alpha
	return out
}
