package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/emb"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/sssp"
	"repro/internal/vecmath"
)

// TestFlatStepReducesLoss verifies that SGD decreases the training loss
// on a tiny fixed problem.
func TestFlatStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := emb.NewMatrix(4, 8)
	m.RandomInit(rng, 0.01)
	samples := []sample.Sample{
		{S: 0, T: 1, Dist: 1},
		{S: 1, T: 2, Dist: 2},
		{S: 0, T: 2, Dist: 3},
		{S: 2, T: 3, Dist: 1},
		{S: 0, T: 3, Dist: 4},
	}
	loss := func() float64 {
		var s float64
		for _, smp := range samples {
			d := vecmath.L1(m.Row(smp.S), m.Row(smp.T))
			e := d - smp.Dist
			s += e * e
		}
		return s
	}
	before := loss()
	for i := 0; i < 400; i++ {
		FlatStep(m, samples, 0.01/8, 1, 1)
	}
	after := loss()
	if after >= before/10 {
		t.Fatalf("loss %v -> %v: not reduced enough", before, after)
	}
	if after > 1e-3 {
		t.Fatalf("final loss %v too high for a consistent metric instance", after)
	}
}

// TestFlatStepScale checks that scale divides targets: training against
// scale s with distances k*s behaves like distances k at scale 1.
func TestFlatStepScale(t *testing.T) {
	mkSamples := func(mult float64) []sample.Sample {
		return []sample.Sample{{S: 0, T: 1, Dist: 1 * mult}, {S: 1, T: 2, Dist: 2 * mult}}
	}
	rng := rand.New(rand.NewSource(2))
	m1 := emb.NewMatrix(3, 4)
	m1.RandomInit(rng, 0.01)
	m2 := m1.Clone()
	for i := 0; i < 50; i++ {
		FlatStep(m1, mkSamples(1), 0.01, 1, 1)
		FlatStep(m2, mkSamples(100), 0.01, 1, 100)
	}
	for i := range m1.Data() {
		if math.Abs(m1.Data()[i]-m2.Data()[i]) > 1e-12 {
			t.Fatal("scale is not equivalent to dividing targets")
		}
	}
}

func TestHierStepTrainsHierarchy(t *testing.T) {
	g, err := gen.Grid(10, 10, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	hh := emb.NewHier(h, 16)
	rng := rand.New(rand.NewSource(4))
	hh.Local.RandomInit(rng, 0.001)

	oracle := sssp.NewTruthOracle(g, 32)
	samples := sample.RandomPairs(g, 2000, 16, oracle, rng)
	scale := 3000.0

	loss := func() float64 {
		vs := make([]float64, 16)
		vt := make([]float64, 16)
		var s float64
		for _, smp := range samples {
			hh.GlobalInto(vs, smp.S)
			hh.GlobalInto(vt, smp.T)
			e := vecmath.L1(vs, vt) - smp.Dist/scale
			s += e * e
		}
		return s / float64(len(samples))
	}
	before := loss()
	rates := LevelRates(0.25/16, h.MaxDepth(), h.MaxDepth())
	for e := 0; e < 10; e++ {
		HierStep(hh, rates, samples, 1, scale)
	}
	after := loss()
	if after >= before/2 {
		t.Fatalf("hier loss %v -> %v: not reduced", before, after)
	}
}

// TestHierStepFrozenLevels ensures zero-rate levels never change.
func TestHierStepFrozenLevels(t *testing.T) {
	g, err := gen.Grid(10, 10, gen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	hh := emb.NewHier(h, 8)
	rng := rand.New(rand.NewSource(6))
	hh.Local.RandomInit(rng, 0.01)
	snapshot := hh.Local.Clone()

	oracle := sssp.NewTruthOracle(g, 16)
	samples := sample.RandomPairs(g, 500, 8, oracle, rng)
	rates := VertexOnlyRates(0.01, h.MaxDepth())
	HierStep(hh, rates, samples, 1, 1000)

	changedVertexRows := 0
	for node := int32(0); node < int32(h.NumNodes()); node++ {
		changed := false
		a := hh.Local.Row(node)
		b := snapshot.Row(node)
		for i := range a {
			if a[i] != b[i] {
				changed = true
				break
			}
		}
		if changed {
			if !h.IsVertexNode(node) {
				t.Fatalf("frozen non-vertex node %d changed", node)
			}
			changedVertexRows++
		}
	}
	if changedVertexRows == 0 {
		t.Fatal("vertex level did not train")
	}
}

// TestHierStepSharedAncestorSkip: training a pair inside one leaf must
// not touch nodes outside that leaf's subtree.
func TestHierStepSharedAncestorSkip(t *testing.T) {
	g, err := gen.Grid(12, 12, gen.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	hh := emb.NewHier(h, 4)
	rng := rand.New(rand.NewSource(8))
	hh.Local.RandomInit(rng, 0.01)
	snapshot := hh.Local.Clone()

	// Find two vertices sharing their leaf subgraph.
	var a, b int32 = -1, -1
	for node := int32(0); node < int32(h.NumNodes()); node++ {
		if h.IsVertexNode(node) {
			continue
		}
		kids := h.Children(node)
		var vkids []int32
		for _, c := range kids {
			if h.IsVertexNode(c) {
				vkids = append(vkids, h.VertexID(c))
			}
		}
		if len(vkids) >= 2 {
			a, b = vkids[0], vkids[1]
			break
		}
	}
	if a < 0 {
		t.Skip("no leaf with 2+ vertices")
	}
	ws := sssp.NewWorkspace(g)
	d := ws.Distance(a, b)
	rates := make([]float64, h.MaxDepth()+1)
	for l := range rates {
		rates[l] = 0.01
	}
	HierStep(hh, rates, []sample.Sample{{S: a, T: b, Dist: d}}, 1, 1000)

	for node := int32(0); node < int32(h.NumNodes()); node++ {
		ra := hh.Local.Row(node)
		rb := snapshot.Row(node)
		changed := false
		for i := range ra {
			if ra[i] != rb[i] {
				changed = true
				break
			}
		}
		if changed && node != h.VertexNode(a) && node != h.VertexNode(b) {
			t.Fatalf("node %d outside the two vertex nodes changed", node)
		}
	}
}

func TestLevelRates(t *testing.T) {
	rates := LevelRates(1.0, 2, 4)
	if rates[0] != 0 {
		t.Fatalf("root rate = %v, want 0", rates[0])
	}
	want := []float64{0, 0.5, 1.0, 0.5, 1.0 / 3}
	for l := 1; l <= 4; l++ {
		if math.Abs(rates[l]-want[l]) > 1e-12 {
			t.Fatalf("rates[%d] = %v, want %v", l, rates[l], want[l])
		}
	}
}

func TestVertexOnlyRates(t *testing.T) {
	rates := VertexOnlyRates(0.7, 3)
	for l := 0; l < 3; l++ {
		if rates[l] != 0 {
			t.Fatalf("rates[%d] = %v, want 0", l, rates[l])
		}
	}
	if rates[3] != 0.7 {
		t.Fatalf("rates[3] = %v, want 0.7", rates[3])
	}
}

func TestClampErr(t *testing.T) {
	if clampErr(100) != errClamp || clampErr(-100) != -errClamp || clampErr(0.5) != 0.5 {
		t.Fatal("clamp wrong")
	}
}

// TestFlatStepL2 exercises the p=2 training path.
func TestFlatStepL2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := emb.NewMatrix(3, 4)
	m.RandomInit(rng, 0.05)
	samples := []sample.Sample{{S: 0, T: 1, Dist: 1}, {S: 1, T: 2, Dist: 1}, {S: 0, T: 2, Dist: 2}}
	loss := func() float64 {
		var s float64
		for _, smp := range samples {
			e := vecmath.L2(m.Row(smp.S), m.Row(smp.T)) - smp.Dist
			s += e * e
		}
		return s
	}
	before := loss()
	for i := 0; i < 500; i++ {
		FlatStep(m, samples, 0.02, 2, 1)
	}
	if after := loss(); after >= before/10 {
		t.Fatalf("L2 loss %v -> %v", before, after)
	}
}

func TestAdamFlatConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := emb.NewMatrix(4, 8)
	m.RandomInit(rng, 0.01)
	adam := NewAdam(4, 8)
	samples := []sample.Sample{
		{S: 0, T: 1, Dist: 1},
		{S: 1, T: 2, Dist: 2},
		{S: 0, T: 2, Dist: 3},
		{S: 2, T: 3, Dist: 1},
	}
	loss := func() float64 {
		var s float64
		for _, smp := range samples {
			e := vecmath.L1(m.Row(smp.S), m.Row(smp.T)) - smp.Dist
			s += e * e
		}
		return s
	}
	before := loss()
	for i := 0; i < 600; i++ {
		FlatStepAdam(m, adam, samples, 1e-3, 1, 1)
	}
	if after := loss(); after >= before/10 {
		t.Fatalf("adam loss %v -> %v", before, after)
	}
}

func TestAdamHierRespectsFrozenLevels(t *testing.T) {
	g, err := gen.Grid(9, 9, gen.DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	hh := emb.NewHier(h, 8)
	rng := rand.New(rand.NewSource(13))
	hh.Local.RandomInit(rng, 0.01)
	snapshot := hh.Local.Clone()
	adam := NewAdam(h.NumNodes(), 8)

	oracle := sssp.NewTruthOracle(g, 16)
	samples := sample.RandomPairs(g, 300, 8, oracle, rng)
	HierStepAdam(hh, adam, VertexOnlyRates(1e-3, h.MaxDepth()), samples, 1, 1000)

	for node := int32(0); node < int32(h.NumNodes()); node++ {
		if h.IsVertexNode(node) {
			continue
		}
		a := hh.Local.Row(node)
		b := snapshot.Row(node)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frozen node %d changed under adam", node)
			}
		}
	}
}
