package train

import (
	"math"

	"repro/internal/emb"
	"repro/internal/sample"
	"repro/internal/vecmath"
)

// Adam holds per-parameter first/second moment estimates for an
// embedding matrix. The paper trains under TensorFlow, whose adaptive
// optimizers tolerate raw-scale gradients; this repository's plain SGD
// replaces that with explicit normalization, and Adam is provided as a
// faithful alternative (compared by the ablation-optimizer experiment).
type Adam struct {
	m, v []float64
	t    int
	// Beta1, Beta2 and Eps are the standard Adam constants.
	Beta1, Beta2, Eps float64
}

// NewAdam returns Adam state sized for matrix rows*dim parameters.
func NewAdam(rows, dim int) *Adam {
	return &Adam{
		m: make([]float64, rows*dim), v: make([]float64, rows*dim),
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
	}
}

// Reset zeroes the moment estimates and step counter. The divergence
// sentinel calls it after rolling an embedding back to a snapshot:
// moments accumulated from the diverged trajectory (possibly non-finite
// themselves) must not steer the retried epochs.
func (a *Adam) Reset() {
	for i := range a.m {
		a.m[i] = 0
		a.v[i] = 0
	}
	a.t = 0
}

// update applies one Adam step to row (starting at parameter offset
// off) given the row gradient scaled by gscale.
func (a *Adam) update(row []float64, off int, grad []float64, gscale, lr float64) {
	corr1 := 1 - math.Pow(a.Beta1, float64(a.t))
	corr2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range row {
		g := grad[i] * gscale
		k := off + i
		a.m[k] = a.Beta1*a.m[k] + (1-a.Beta1)*g
		a.v[k] = a.Beta2*a.v[k] + (1-a.Beta2)*g*g
		row[i] -= lr * (a.m[k] / corr1) / (math.Sqrt(a.v[k]/corr2) + a.Eps)
	}
}

// FlatStepAdam is FlatStep with Adam updates. It returns the number of
// samples skipped for carrying non-finite distances.
func FlatStepAdam(m *emb.Matrix, adam *Adam, samples []sample.Sample, lr, p, scale float64) (skipped int) {
	d := m.Dim()
	grad := make([]float64, d)
	for _, smp := range samples {
		if !usable(smp) {
			skipped++
			continue
		}
		rs := m.Row(smp.S)
		rt := m.Row(smp.T)
		phiHat := vecmath.Lp(rs, rt, p)
		err := clampErr(phiHat - smp.Dist/scale)
		if err == 0 {
			continue
		}
		vecmath.LpGrad(grad, rs, rt, p, phiHat)
		adam.t++
		adam.update(rs, int(smp.S)*d, grad, 2*err, lr)
		adam.update(rt, int(smp.T)*d, grad, -2*err, lr)
	}
	return skipped
}

// HierStepAdam is HierStep with Adam updates; lrByLevel scales the base
// rate per level exactly as in HierStep. It returns the number of
// samples skipped for carrying non-finite distances.
func HierStepAdam(hh *emb.Hier, adam *Adam, lrByLevel []float64, samples []sample.Sample, p, scale float64) (skipped int) {
	d := hh.Local.Dim()
	vs := make([]float64, d)
	vt := make([]float64, d)
	grad := make([]float64, d)
	h := hh.H
	for _, smp := range samples {
		if !usable(smp) {
			skipped++
			continue
		}
		ancS := h.Ancestors(smp.S)
		ancT := h.Ancestors(smp.T)
		hh.GlobalInto(vs, smp.S)
		hh.GlobalInto(vt, smp.T)
		phiHat := vecmath.Lp(vs, vt, p)
		err := clampErr(phiHat - smp.Dist/scale)
		if err == 0 {
			continue
		}
		vecmath.LpGrad(grad, vs, vt, p, phiHat)
		adam.t++
		common := 0
		for common < len(ancS) && common < len(ancT) && ancS[common] == ancT[common] {
			common++
		}
		for _, node := range ancS[common:] {
			if lr := nodeRate(h, node, lrByLevel); lr != 0 {
				adam.update(hh.Local.Row(node), int(node)*d, grad, 2*err, lr)
			}
		}
		for _, node := range ancT[common:] {
			if lr := nodeRate(h, node, lrByLevel); lr != 0 {
				adam.update(hh.Local.Row(node), int(node)*d, grad, -2*err, lr)
			}
		}
	}
	return skipped
}
