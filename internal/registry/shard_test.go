package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/shard"
)

// publishSharded cuts a fresh model at level 1 into two shards and
// publishes it with the full model alongside.
func publishSharded(t *testing.T, s *Store, seed int64) *shard.Split {
	t.Helper()
	g, m := quickBuild(t, seed)
	lt, err := alt.Build(g, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.Cut(m, lt, shard.Config{CutLevel: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("demo", Artifacts{Model: m, ALT: lt, Shards: sp}); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestPublishAndLoadShard(t *testing.T) {
	s := openStore(t)
	sp := publishSharded(t, s, 1)

	for k := 0; k < 2; k++ {
		set, err := s.LoadShard("demo", "v1", k)
		if err != nil {
			t.Fatal(err)
		}
		if set.Shard == nil || set.ShardMap == nil {
			t.Fatalf("shard %d load missing artifacts: %+v", k, set)
		}
		if set.Shard.ShardID() != k || set.Shard.NumShards() != 2 {
			t.Fatalf("shard %d identity wrong: %d/%d", k, set.Shard.ShardID(), set.Shard.NumShards())
		}
		if set.ALT == nil {
			t.Fatalf("shard %d region guard missing", k)
		}
		if set.ALT.NumLandmarks() != sp.Guards[k].NumLandmarks() {
			t.Fatalf("shard %d guard has %d landmarks, published %d",
				k, set.ALT.NumLandmarks(), sp.Guards[k].NumLandmarks())
		}
		// Loaded shard answers identically to the in-memory cut.
		n := int32(set.Shard.NumVertices())
		for v := int32(0); v < n; v++ {
			if set.Shard.Owns(v) != sp.Shards[k].Owns(v) {
				t.Fatalf("shard %d ownership drifted for vertex %d", k, v)
			}
		}
	}
	// The same version still loads as a full model for unsharded replicas.
	full, err := s.LoadLatest("demo", LoadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Model == nil {
		t.Fatal("sharded version lost its full model")
	}

	if _, err := s.LoadShard("demo", "v1", 7); err == nil {
		t.Fatal("shard id past topology accepted")
	}
}

func TestLoadShardOnUnshardedVersion(t *testing.T) {
	s := openStore(t)
	_, m := quickBuild(t, 1)
	if _, err := s.Publish("demo", Artifacts{Model: m}); err != nil {
		t.Fatal(err)
	}
	_, err := s.LoadShard("demo", "v1", 0)
	if err == nil || !strings.Contains(err.Error(), "not a sharded version") {
		t.Fatalf("want 'not a sharded version' error, got %v", err)
	}
}

// A corrupt shard map (or shard model) must quarantine the version and
// fall back to the previous sharded one, exactly like full-model loads.
func TestCorruptShardMapQuarantinedWithFallback(t *testing.T) {
	s := openStore(t)
	publishSharded(t, s, 1)
	publishSharded(t, s, 2)

	victim := filepath.Join(s.Path("demo", "v2"), ShardMapFile)
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	set, err := s.LoadLatestShard("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Version != "v1" {
		t.Fatalf("fallback loaded %s, want v1", set.Version)
	}
	vs, err := s.Versions("demo")
	if err != nil {
		t.Fatal(err)
	}
	if !vs[1].Quarantined {
		t.Fatalf("v2 not quarantined: %+v", vs)
	}
}

func TestCorruptShardModelQuarantinedWithFallback(t *testing.T) {
	s := openStore(t)
	publishSharded(t, s, 1)
	publishSharded(t, s, 2)

	victim := filepath.Join(s.Path("demo", "v2"), ShardModelFile(1))
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	set, err := s.LoadLatestShard("demo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Version != "v1" || set.Shard.ShardID() != 1 {
		t.Fatalf("fallback loaded %s shard %d, want v1 shard 1", set.Version, set.Shard.ShardID())
	}
}

func TestLoadLatestShardAllCorruptFails(t *testing.T) {
	s := openStore(t)
	publishSharded(t, s, 1)
	if err := os.Truncate(filepath.Join(s.Path("demo", "v1"), ShardMapFile), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadLatestShard("demo", 0); err == nil {
		t.Fatal("load succeeded with every sharded version corrupt")
	}
}
