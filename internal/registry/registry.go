// Package registry is the versioned on-disk model store behind
// zero-downtime serving: rnebuild publishes immutable model versions
// into it, rneserver resolves and hot-swaps them. One registry root
// holds any number of named models, each a directory of numbered
// version directories plus a manifest:
//
//	<root>/<name>/
//	    MANIFEST.json            index of versions, pin, quarantine marks
//	    v1/  model.rne           RNEMODEL3 (CRC-framed) model
//	         model.compact.rne   optional float32 sibling (RNECOMPACT1)
//	         alt.rnealt          optional ALT guard index (RNEALT1)
//	         spatial.rneidx      optional spatial index (RNEIDX2)
//	    v2/  ...
//
// Every file is written through fsx.WriteAtomic and versions are staged
// in a hidden directory, renamed into place, and only then recorded in
// the manifest — a crashed or failed publish can never surface a
// half-written version as Latest. Loads verify the artifacts' CRC32
// integrity framing; a version whose artifacts no longer parse is
// quarantined (directory renamed aside, manifest marked) and resolution
// falls back to the newest remaining good version. Retention GC bounds
// disk growth without ever deleting the pinned or newest good version.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/fsx"
	"repro/internal/index"
	"repro/internal/shard"
)

// Artifact file names within a version directory.
const (
	ModelFile   = "model.rne"
	CompactFile = "model.compact.rne"
	ALTFile     = "alt.rnealt"
	SpatialFile = "spatial.rneidx"
	// ShardMapFile is the vertex→shard routing map of a sharded
	// version, under the shards/ subdirectory next to the per-shard
	// artifact directories.
	ShardMapFile = "shards/shardmap.rnemap"
)

// ShardDir returns the version-relative directory of shard k's
// artifacts.
func ShardDir(k int) string { return filepath.Join("shards", strconv.Itoa(k)) }

// ShardModelFile returns the version-relative path of shard k's model.
func ShardModelFile(k int) string { return filepath.Join(ShardDir(k), "shard.rne") }

// ShardALTFile returns the version-relative path of shard k's
// region-restricted guard index.
func ShardALTFile(k int) string { return filepath.Join(ShardDir(k), "alt.rnealt") }

const manifestFile = "MANIFEST.json"

// quarantineSuffix marks version directories moved aside after failing
// integrity checks; quarantined directories are never resolved again
// but are kept on disk for forensics until GC removes them.
const quarantineSuffix = ".quarantined"

var (
	nameRe    = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)
	versionRe = regexp.MustCompile(`^v([0-9]+)$`)
)

// Version is one manifest entry: an immutable published model version.
type Version struct {
	Version     string   `json:"version"`
	CreatedUnix int64    `json:"created_unix"`
	Files       []string `json:"files"`
	Quarantined bool     `json:"quarantined,omitempty"`
}

// manifest is the per-model index, serialized as MANIFEST.json.
type manifest struct {
	Name     string    `json:"name"`
	Pinned   string    `json:"pinned,omitempty"`
	Versions []Version `json:"versions"`
}

// Artifacts bundles what one Publish writes. Model is required; the
// rest are optional siblings.
type Artifacts struct {
	Model *core.Model
	// Compact additionally stores the float32 sibling (CompactFile),
	// letting replicas started with -compact serve at half the resident
	// model memory.
	Compact bool
	// ALT, when non-nil, stores the guard index alongside the model so
	// a swapped-in version carries its own certified-bounds guard.
	ALT *alt.Index
	// Index, when non-nil, stores the spatial index (requires the full
	// model to load, so compact-only replicas skip it).
	Index *index.Tree
	// Shards, when non-nil, additionally publishes the version as a
	// sharded cut (shard.Cut output): the routing map plus one
	// directory per shard under shards/, each holding the shard model
	// and its region-restricted guard. The same manifest-last staging
	// covers them, so a torn sharded publish never surfaces.
	Shards *shard.Split
}

// Set is one fully-loaded version: the unit a server hot-swaps.
// Exactly the artifacts present on disk are non-nil.
type Set struct {
	Name    string
	Version string
	Model   *core.Model        // nil when loaded with LoadOpts.Compact
	Compact *core.CompactModel // nil unless published with Artifacts.Compact
	ALT     *alt.Index
	Index   *index.Tree
	// Shard and ShardMap are set only by LoadShard/LoadLatestShard:
	// one shard's model (Model/Compact stay nil) plus the version's
	// routing map, cross-checked against it. ALT then holds the
	// shard's region-restricted guard rather than the full one.
	Shard    *shard.Model
	ShardMap *shard.Map
}

// LoadOpts tunes version loading.
type LoadOpts struct {
	// Compact loads the float32 sibling instead of the full model:
	// Set.Model stays nil and the spatial index (which needs the full
	// model) is skipped. Loading fails if the version has no compact
	// artifact.
	Compact bool
}

// Store is a registry rooted at one directory. A Store serializes its
// own manifest read-modify-write cycles; concurrent writers from
// different processes are not coordinated (run one publisher).
type Store struct {
	root string
	mu   sync.Mutex
}

// Open returns a Store rooted at dir, creating it if absent.
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("registry: empty root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Store{root: root}, nil
}

// Root returns the registry root directory.
func (s *Store) Root() string { return s.root }

// Dir returns the directory holding the named model's versions.
func (s *Store) Dir(name string) string { return filepath.Join(s.root, name) }

// Path returns the directory of one version of the named model.
func (s *Store) Path(name, version string) string {
	return filepath.Join(s.root, name, version)
}

func checkName(name string) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q", name)
	}
	return nil
}

// readManifest loads the manifest for name; a missing manifest yields
// an empty one (a model with no published versions yet).
func (s *Store) readManifest(name string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.Dir(name), manifestFile))
	if os.IsNotExist(err) {
		return &manifest{Name: name}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("registry: manifest for %q is corrupt: %w", name, err)
	}
	return &m, nil
}

// writeManifest atomically replaces the manifest for name.
func (s *Store) writeManifest(name string, m *manifest) error {
	return fsx.WriteAtomic(filepath.Join(s.Dir(name), manifestFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// versionNumber parses "v<N>"; ok is false for anything else.
func versionNumber(v string) (int, bool) {
	m := versionRe.FindStringSubmatch(v)
	if m == nil {
		return 0, false
	}
	n, err := strconv.Atoi(m[1])
	return n, err == nil
}

// nextVersion picks the successor of the highest version recorded in
// the manifest or present on disk (quarantined directories included, so
// version numbers are never reused).
func (s *Store) nextVersion(name string, m *manifest) string {
	max := 0
	for _, v := range m.Versions {
		if n, ok := versionNumber(v.Version); ok && n > max {
			max = n
		}
	}
	entries, _ := os.ReadDir(s.Dir(name))
	for _, e := range entries {
		base := strings.TrimSuffix(e.Name(), quarantineSuffix)
		if n, ok := versionNumber(base); ok && n > max {
			max = n
		}
	}
	return "v" + strconv.Itoa(max+1)
}

// Publish writes the artifacts as the next version of the named model
// and records it in the manifest. The version is staged in a hidden
// directory and renamed into place before the manifest update, so a
// failure at any point leaves Latest untouched.
func (s *Store) Publish(name string, art Artifacts) (string, error) {
	if err := checkName(name); err != nil {
		return "", err
	}
	if art.Model == nil {
		return "", fmt.Errorf("registry: publish needs a model")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	dir := s.Dir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	m, err := s.readManifest(name)
	if err != nil {
		return "", err
	}
	version := s.nextVersion(name, m)

	stage, err := os.MkdirTemp(dir, ".staging-"+version+"-*")
	if err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	defer os.RemoveAll(stage) // no-op after the successful rename

	files := []string{ModelFile}
	if err := art.Model.SaveFile(filepath.Join(stage, ModelFile)); err != nil {
		return "", fmt.Errorf("registry: staging model: %w", err)
	}
	if art.Compact {
		cm, err := art.Model.Compact()
		if err != nil {
			return "", fmt.Errorf("registry: compacting model: %w", err)
		}
		if err := cm.SaveFile(filepath.Join(stage, CompactFile)); err != nil {
			return "", fmt.Errorf("registry: staging compact model: %w", err)
		}
		files = append(files, CompactFile)
	}
	if art.ALT != nil {
		if art.ALT.NumVertices() != art.Model.NumVertices() {
			return "", fmt.Errorf("registry: ALT index covers %d vertices but model covers %d",
				art.ALT.NumVertices(), art.Model.NumVertices())
		}
		if err := art.ALT.SaveFile(filepath.Join(stage, ALTFile)); err != nil {
			return "", fmt.Errorf("registry: staging ALT index: %w", err)
		}
		files = append(files, ALTFile)
	}
	if art.Index != nil {
		if err := art.Index.SaveFile(filepath.Join(stage, SpatialFile)); err != nil {
			return "", fmt.Errorf("registry: staging spatial index: %w", err)
		}
		files = append(files, SpatialFile)
	}
	if art.Shards != nil {
		sf, err := stageShards(stage, art)
		if err != nil {
			return "", err
		}
		files = append(files, sf...)
	}

	if err := os.Rename(stage, s.Path(name, version)); err != nil {
		return "", fmt.Errorf("registry: committing %s: %w", version, err)
	}
	m.Versions = append(m.Versions, Version{
		Version:     version,
		CreatedUnix: time.Now().Unix(),
		Files:       files,
	})
	if err := s.writeManifest(name, m); err != nil {
		// The version directory exists but is unrecorded; the next
		// publish will skip its number and resolution ignores it.
		return "", err
	}
	return version, nil
}

// stageShards writes a sharded cut into the staging directory,
// validating the cut against the full model first. Returns the
// version-relative file names staged.
func stageShards(stage string, art Artifacts) ([]string, error) {
	sp := art.Shards
	if sp.Map == nil || len(sp.Shards) == 0 {
		return nil, fmt.Errorf("registry: sharded publish needs a map and at least one shard")
	}
	if sp.Map.NumVertices() != art.Model.NumVertices() {
		return nil, fmt.Errorf("registry: shard map covers %d vertices but model covers %d",
			sp.Map.NumVertices(), art.Model.NumVertices())
	}
	if len(sp.Shards) != sp.Map.NumShards() {
		return nil, fmt.Errorf("registry: %d shard models for a %d-shard map",
			len(sp.Shards), sp.Map.NumShards())
	}
	if sp.Guards != nil && len(sp.Guards) != len(sp.Shards) {
		return nil, fmt.Errorf("registry: %d shard guards for %d shards", len(sp.Guards), len(sp.Shards))
	}
	if err := os.MkdirAll(filepath.Dir(filepath.Join(stage, ShardMapFile)), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if err := sp.Map.SaveMapFile(filepath.Join(stage, ShardMapFile)); err != nil {
		return nil, fmt.Errorf("registry: staging shard map: %w", err)
	}
	files := []string{ShardMapFile}
	for k, sm := range sp.Shards {
		if sm == nil || sm.ShardID() != k {
			return nil, fmt.Errorf("registry: shard %d artifact missing or misnumbered", k)
		}
		if err := os.MkdirAll(filepath.Join(stage, ShardDir(k)), 0o755); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		if err := sm.SaveFile(filepath.Join(stage, ShardModelFile(k))); err != nil {
			return nil, fmt.Errorf("registry: staging shard %d model: %w", k, err)
		}
		files = append(files, ShardModelFile(k))
		if sp.Guards != nil && sp.Guards[k] != nil {
			if err := sp.Guards[k].SaveFile(filepath.Join(stage, ShardALTFile(k))); err != nil {
				return nil, fmt.Errorf("registry: staging shard %d guard: %w", k, err)
			}
			files = append(files, ShardALTFile(k))
		}
	}
	return files, nil
}

// Versions lists the manifest entries for name, oldest first.
func (s *Store) Versions(name string) ([]Version, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	out := make([]Version, len(m.Versions))
	copy(out, m.Versions)
	sort.Slice(out, func(i, j int) bool {
		a, _ := versionNumber(out[i].Version)
		b, _ := versionNumber(out[j].Version)
		return a < b
	})
	return out, nil
}

// Names lists the models with a manifest under the registry root.
func (s *Store) Names() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.root, e.Name(), manifestFile)); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// resolve returns the version Load should try first: the pin when set,
// else the newest non-quarantined version.
func resolve(m *manifest) (string, error) {
	if m.Pinned != "" {
		for _, v := range m.Versions {
			if v.Version == m.Pinned {
				if v.Quarantined {
					return "", fmt.Errorf("registry: pinned version %s of %q is quarantined", m.Pinned, m.Name)
				}
				return m.Pinned, nil
			}
		}
		return "", fmt.Errorf("registry: pinned version %s of %q does not exist", m.Pinned, m.Name)
	}
	best, bestN := "", -1
	for _, v := range m.Versions {
		if v.Quarantined {
			continue
		}
		if n, ok := versionNumber(v.Version); ok && n > bestN {
			best, bestN = v.Version, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("registry: model %q has no usable versions", m.Name)
	}
	return best, nil
}

// Latest resolves the version a load would serve: the pinned version if
// one is set, otherwise the newest non-quarantined version.
func (s *Store) Latest(name string) (string, error) {
	if err := checkName(name); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest(name)
	if err != nil {
		return "", err
	}
	return resolve(m)
}

// Pin makes every subsequent resolution return the given version until
// Unpin, shielding serving from newer publishes during e.g. a staged
// rollout or an incident rollback.
func (s *Store) Pin(name, version string) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest(name)
	if err != nil {
		return err
	}
	for _, v := range m.Versions {
		if v.Version == version {
			if v.Quarantined {
				return fmt.Errorf("registry: cannot pin quarantined version %s", version)
			}
			m.Pinned = version
			return s.writeManifest(name, m)
		}
	}
	return fmt.Errorf("registry: model %q has no version %s", name, version)
}

// Unpin restores newest-wins resolution.
func (s *Store) Unpin(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest(name)
	if err != nil {
		return err
	}
	m.Pinned = ""
	return s.writeManifest(name, m)
}

// Quarantine moves the version's directory aside and marks it in the
// manifest so resolution never returns it again. Quarantining an
// already-quarantined or missing version is an error.
func (s *Store) Quarantine(name, version string) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantineLocked(name, version)
}

func (s *Store) quarantineLocked(name, version string) error {
	m, err := s.readManifest(name)
	if err != nil {
		return err
	}
	for i, v := range m.Versions {
		if v.Version != version {
			continue
		}
		if v.Quarantined {
			return fmt.Errorf("registry: version %s already quarantined", version)
		}
		src := s.Path(name, version)
		if err := os.Rename(src, src+quarantineSuffix); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("registry: quarantining %s: %w", version, err)
		}
		m.Versions[i].Quarantined = true
		if m.Pinned == version {
			m.Pinned = ""
		}
		return s.writeManifest(name, m)
	}
	return fmt.Errorf("registry: model %q has no version %s", name, version)
}

// LoadVersion loads one specific version's artifacts, verifying their
// integrity framing. It does not quarantine on failure — that policy
// lives in LoadLatest, where a fallback exists.
func (s *Store) LoadVersion(name, version string, opts LoadOpts) (*Set, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	return s.loadVersion(name, version, opts)
}

func (s *Store) loadVersion(name, version string, opts LoadOpts) (*Set, error) {
	dir := s.Path(name, version)
	set := &Set{Name: name, Version: version}

	if opts.Compact {
		cm, err := core.LoadCompactFile(filepath.Join(dir, CompactFile))
		if err != nil {
			return nil, fmt.Errorf("registry: %s/%s compact model: %w", name, version, err)
		}
		set.Compact = cm
	} else {
		m, err := core.LoadFile(filepath.Join(dir, ModelFile))
		if err != nil {
			return nil, fmt.Errorf("registry: %s/%s model: %w", name, version, err)
		}
		set.Model = m
	}
	if lt, err := alt.LoadFile(filepath.Join(dir, ALTFile)); err == nil {
		set.ALT = lt
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("registry: %s/%s ALT index: %w", name, version, err)
	}
	// The spatial index needs the full model's embedding rows.
	if set.Model != nil {
		if idx, err := index.LoadFile(filepath.Join(dir, SpatialFile), set.Model); err == nil {
			set.Index = idx
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("registry: %s/%s spatial index: %w", name, version, err)
		}
	}
	return set, nil
}

// LoadLatest resolves and loads the version Latest points at. If its
// artifacts fail to load (truncated or bit-flipped files), the version
// is quarantined and loading falls back to the next-newest good
// version, repeating until one loads or none remain. The returned
// error, when every version is corrupt, wraps the first failure.
func (s *Store) LoadLatest(name string, opts LoadOpts) (*Set, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	var firstErr error
	for {
		version, err := s.Latest(name)
		if err != nil {
			if firstErr != nil {
				return nil, fmt.Errorf("%w (after quarantining corrupt versions, first failure: %v)", err, firstErr)
			}
			return nil, err
		}
		set, err := s.loadVersion(name, version, opts)
		if err == nil {
			return set, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if qerr := s.Quarantine(name, version); qerr != nil {
			return nil, fmt.Errorf("registry: loading %s failed (%v) and quarantine failed: %w", version, err, qerr)
		}
	}
}

// LoadShard loads shard k of one specific version: the shard model,
// the version's routing map (cross-checked against it) and, when
// present, the shard's region-restricted guard. Like LoadVersion it
// never quarantines — that policy lives in LoadLatestShard.
func (s *Store) LoadShard(name, version string, k int) (*Set, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	return s.loadShard(name, version, k)
}

func (s *Store) loadShard(name, version string, k int) (*Set, error) {
	if k < 0 {
		return nil, fmt.Errorf("registry: shard id must be >= 0, got %d", k)
	}
	dir := s.Path(name, version)
	sm, err := shard.LoadMapFile(filepath.Join(dir, ShardMapFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("registry: %s/%s is not a sharded version (no %s)", name, version, ShardMapFile)
		}
		return nil, fmt.Errorf("registry: %s/%s shard map: %w", name, version, err)
	}
	if k >= sm.NumShards() {
		return nil, fmt.Errorf("registry: %s/%s has %d shards, no shard %d", name, version, sm.NumShards(), k)
	}
	mdl, err := shard.LoadModelFile(filepath.Join(dir, ShardModelFile(k)))
	if err != nil {
		return nil, fmt.Errorf("registry: %s/%s shard %d model: %w", name, version, k, err)
	}
	if mdl.ShardID() != k || mdl.NumShards() != sm.NumShards() ||
		mdl.NumVertices() != sm.NumVertices() || mdl.CutLevel() != sm.CutLevel() {
		return nil, fmt.Errorf("registry: %s/%s shard %d disagrees with the shard map (shard %d/%d over %d vertices at cut %d vs map %d shards over %d at cut %d)",
			name, version, k, mdl.ShardID(), mdl.NumShards(), mdl.NumVertices(), mdl.CutLevel(),
			sm.NumShards(), sm.NumVertices(), sm.CutLevel())
	}
	set := &Set{Name: name, Version: version, Shard: mdl, ShardMap: sm}
	if lt, err := alt.LoadFile(filepath.Join(dir, ShardALTFile(k))); err == nil {
		set.ALT = lt
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("registry: %s/%s shard %d guard: %w", name, version, k, err)
	}
	return set, nil
}

// LoadLatestShard resolves the latest version and loads shard k of it,
// with the same quarantine-and-fall-back policy as LoadLatest: a
// version whose shard artifacts are corrupt (or that is not sharded at
// all) is quarantined and the next-newest version is tried.
func (s *Store) LoadLatestShard(name string, k int) (*Set, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	var firstErr error
	for {
		version, err := s.Latest(name)
		if err != nil {
			if firstErr != nil {
				return nil, fmt.Errorf("%w (after quarantining corrupt versions, first failure: %v)", err, firstErr)
			}
			return nil, err
		}
		set, err := s.loadShard(name, version, k)
		if err == nil {
			return set, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if qerr := s.Quarantine(name, version); qerr != nil {
			return nil, fmt.Errorf("registry: loading %s failed (%v) and quarantine failed: %w", version, err, qerr)
		}
	}
}

// GC enforces retention for the named model: the newest keep good
// versions (and the pinned version, always) survive; older versions and
// every quarantined directory beyond them are deleted from disk and
// dropped from the manifest. Returns the removed version names.
func (s *Store) GC(name string, keep int) ([]string, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	if keep < 1 {
		return nil, fmt.Errorf("registry: GC must keep at least 1 version, got %d", keep)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest(name)
	if err != nil {
		return nil, err
	}
	// Sort newest first; survivors are the first `keep` good versions
	// plus the pin wherever it falls.
	ordered := make([]Version, len(m.Versions))
	copy(ordered, m.Versions)
	sort.Slice(ordered, func(i, j int) bool {
		a, _ := versionNumber(ordered[i].Version)
		b, _ := versionNumber(ordered[j].Version)
		return a > b
	})
	survivors := make(map[string]bool)
	good := 0
	for _, v := range ordered {
		if v.Quarantined {
			continue
		}
		if good < keep || v.Version == m.Pinned {
			survivors[v.Version] = true
			good++
		}
	}
	var removed []string
	var kept []Version
	for _, v := range m.Versions {
		if survivors[v.Version] {
			kept = append(kept, v)
			continue
		}
		dir := s.Path(name, v.Version)
		if v.Quarantined {
			dir += quarantineSuffix
		}
		if err := os.RemoveAll(dir); err != nil {
			return removed, fmt.Errorf("registry: removing %s: %w", v.Version, err)
		}
		removed = append(removed, v.Version)
	}
	if len(removed) == 0 {
		return nil, nil
	}
	m.Versions = kept
	return removed, s.writeManifest(name, m)
}
