package registry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fsx"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/index"
)

// quickBuild trains a small but real model so published artifacts carry
// genuine CRC framing end to end.
func quickBuild(t *testing.T, seed int64) (*graph.Graph, *core.Model) {
	t.Helper()
	g, err := gen.Grid(8, 8, gen.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(seed)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublishAndLoadLatest(t *testing.T) {
	s := openStore(t)
	_, m1 := quickBuild(t, 1)
	_, m2 := quickBuild(t, 2)

	v1, err := s.Publish("demo", Artifacts{Model: m1})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != "v1" {
		t.Fatalf("first publish = %s, want v1", v1)
	}
	v2, err := s.Publish("demo", Artifacts{Model: m2})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != "v2" {
		t.Fatalf("second publish = %s, want v2", v2)
	}

	latest, err := s.Latest("demo")
	if err != nil || latest != "v2" {
		t.Fatalf("Latest = %s, %v; want v2", latest, err)
	}
	set, err := s.LoadLatest("demo", LoadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Version != "v2" || set.Model == nil {
		t.Fatalf("loaded %+v", set)
	}
	if set.Model.Scale() != m2.Scale() {
		t.Fatalf("loaded scale %v, want %v", set.Model.Scale(), m2.Scale())
	}
	if got := set.Model.Estimate(0, 5); got != m2.Estimate(0, 5) {
		t.Fatalf("loaded estimate %v, want %v", got, m2.Estimate(0, 5))
	}

	vs, err := s.Versions("demo")
	if err != nil || len(vs) != 2 {
		t.Fatalf("Versions = %v, %v", vs, err)
	}
	if vs[0].Version != "v1" || vs[1].Version != "v2" {
		t.Fatalf("version order wrong: %v", vs)
	}
}

func TestPublishSiblingsAndCompactLoad(t *testing.T) {
	s := openStore(t)
	g, m := quickBuild(t, 3)
	lt, err := alt.Build(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(m, []int32{0, 2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("demo", Artifacts{Model: m, Compact: true, ALT: lt, Index: idx}); err != nil {
		t.Fatal(err)
	}

	full, err := s.LoadLatest("demo", LoadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Model == nil || full.ALT == nil || full.Index == nil {
		t.Fatalf("full load missing artifacts: %+v", full)
	}
	if full.ALT.NumLandmarks() != 4 || full.Index.Size() != 5 {
		t.Fatalf("siblings wrong: landmarks=%d targets=%d", full.ALT.NumLandmarks(), full.Index.Size())
	}

	compact, err := s.LoadLatest("demo", LoadOpts{Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if compact.Compact == nil || compact.Model != nil || compact.Index != nil {
		t.Fatalf("compact load shape wrong: %+v", compact)
	}
	if compact.ALT == nil {
		t.Fatal("compact load dropped the ALT guard")
	}
	want := m.Estimate(1, 60)
	got := compact.Compact.Estimate(1, 60)
	if rel := (got - want) / want; rel > 1e-5 || rel < -1e-5 {
		t.Fatalf("compact estimate %v too far from full %v", got, want)
	}
}

func TestCompactLoadWithoutSiblingFails(t *testing.T) {
	s := openStore(t)
	_, m := quickBuild(t, 4)
	if _, err := s.Publish("demo", Artifacts{Model: m}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadLatest("demo", LoadOpts{Compact: true}); err == nil {
		t.Fatal("compact load succeeded without a compact artifact")
	}
}

func TestPinResolution(t *testing.T) {
	s := openStore(t)
	_, m1 := quickBuild(t, 1)
	_, m2 := quickBuild(t, 2)
	if _, err := s.Publish("demo", Artifacts{Model: m1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("demo", Artifacts{Model: m2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("demo", "v1"); err != nil {
		t.Fatal(err)
	}
	if latest, _ := s.Latest("demo"); latest != "v1" {
		t.Fatalf("pinned Latest = %s, want v1", latest)
	}
	set, err := s.LoadLatest("demo", LoadOpts{})
	if err != nil || set.Version != "v1" {
		t.Fatalf("pinned load = %+v, %v", set, err)
	}
	if err := s.Unpin("demo"); err != nil {
		t.Fatal(err)
	}
	if latest, _ := s.Latest("demo"); latest != "v2" {
		t.Fatalf("unpinned Latest = %s, want v2", latest)
	}
	if err := s.Pin("demo", "v9"); err == nil {
		t.Fatal("pinned a version that does not exist")
	}
}

// TestCorruptLatestQuarantinedWithFallback is the torn-write drill: the
// newest version's model file is truncated on disk (as a crash between
// page writes or silent media corruption would), and serving resolution
// must quarantine it and fall back to the prior good version.
func TestCorruptLatestQuarantinedWithFallback(t *testing.T) {
	s := openStore(t)
	_, m1 := quickBuild(t, 1)
	_, m2 := quickBuild(t, 2)
	if _, err := s.Publish("demo", Artifacts{Model: m1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("demo", Artifacts{Model: m2}); err != nil {
		t.Fatal(err)
	}

	victim := filepath.Join(s.Path("demo", "v2"), ModelFile)
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	set, err := s.LoadLatest("demo", LoadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Version != "v1" {
		t.Fatalf("fallback loaded %s, want v1", set.Version)
	}
	if set.Model.Scale() != m1.Scale() {
		t.Fatal("fallback did not load the v1 artifacts")
	}

	vs, err := s.Versions("demo")
	if err != nil {
		t.Fatal(err)
	}
	if !vs[1].Quarantined {
		t.Fatalf("v2 not marked quarantined: %+v", vs)
	}
	if _, err := os.Stat(s.Path("demo", "v2") + quarantineSuffix); err != nil {
		t.Fatalf("quarantine directory missing: %v", err)
	}
	if latest, _ := s.Latest("demo"); latest != "v1" {
		t.Fatalf("Latest after quarantine = %s, want v1", latest)
	}

	// Version numbers are never reused: the next publish is v3.
	_, m3 := quickBuild(t, 5)
	v, err := s.Publish("demo", Artifacts{Model: m3})
	if err != nil || v != "v3" {
		t.Fatalf("publish after quarantine = %s, %v; want v3", v, err)
	}
}

func TestEveryVersionCorruptFailsWithContext(t *testing.T) {
	s := openStore(t)
	_, m := quickBuild(t, 1)
	if _, err := s.Publish("demo", Artifacts{Model: m}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(s.Path("demo", "v1"), ModelFile), 10); err != nil {
		t.Fatal(err)
	}
	_, err := s.LoadLatest("demo", LoadOpts{})
	if err == nil {
		t.Fatal("load succeeded with every version corrupt")
	}
	if !strings.Contains(err.Error(), "no usable versions") {
		t.Fatalf("error lacks resolution context: %v", err)
	}
}

// TestPublishTornByFaultInjectionNeverSurfaces arms the fsx failpoint so
// the publish's model write dies mid-flight; the failed version must not
// appear in the manifest, leave no staging litter, and not perturb
// Latest or subsequent version numbering.
func TestPublishTornByFaultInjectionNeverSurfaces(t *testing.T) {
	s := openStore(t)
	_, m1 := quickBuild(t, 1)
	_, m2 := quickBuild(t, 2)
	if _, err := s.Publish("demo", Artifacts{Model: m1}); err != nil {
		t.Fatal(err)
	}

	defer faultinject.Reset()
	faultinject.Enable(fsx.FailpointWriteAtomic, faultinject.Fault{})
	if _, err := s.Publish("demo", Artifacts{Model: m2}); err == nil {
		t.Fatal("publish succeeded under an injected write failure")
	}
	faultinject.Reset()

	if latest, err := s.Latest("demo"); err != nil || latest != "v1" {
		t.Fatalf("Latest after failed publish = %s, %v; want v1", latest, err)
	}
	entries, err := os.ReadDir(s.Dir("demo"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".staging-") {
			t.Fatalf("staging litter left behind: %s", e.Name())
		}
	}
	// The slot freed by the failed publish is reused cleanly.
	if v, err := s.Publish("demo", Artifacts{Model: m2}); err != nil || v != "v2" {
		t.Fatalf("publish after recovery = %s, %v; want v2", v, err)
	}
	if set, err := s.LoadLatest("demo", LoadOpts{}); err != nil || set.Version != "v2" {
		t.Fatalf("load after recovery = %+v, %v", set, err)
	}
}

func TestGCRetention(t *testing.T) {
	s := openStore(t)
	for seed := int64(1); seed <= 4; seed++ {
		_, m := quickBuild(t, seed)
		if _, err := s.Publish("demo", Artifacts{Model: m}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Pin("demo", "v2"); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC("demo", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "v1" {
		t.Fatalf("GC removed %v, want [v1]", removed)
	}
	if _, err := os.Stat(s.Path("demo", "v1")); !os.IsNotExist(err) {
		t.Fatal("v1 directory survived GC")
	}
	vs, _ := s.Versions("demo")
	if len(vs) != 3 {
		t.Fatalf("manifest after GC: %v", vs)
	}
	// The pin survives GC even though it is older than the keep window.
	if set, err := s.LoadLatest("demo", LoadOpts{}); err != nil || set.Version != "v2" {
		t.Fatalf("pinned load after GC = %+v, %v", set, err)
	}
}

func TestGCRemovesQuarantinedDirs(t *testing.T) {
	s := openStore(t)
	_, m1 := quickBuild(t, 1)
	_, m2 := quickBuild(t, 2)
	if _, err := s.Publish("demo", Artifacts{Model: m1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("demo", Artifacts{Model: m2}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(s.Path("demo", "v2"), ModelFile), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadLatest("demo", LoadOpts{}); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC("demo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "v2" {
		t.Fatalf("GC removed %v, want quarantined v2", removed)
	}
	if _, err := os.Stat(s.Path("demo", "v2") + quarantineSuffix); !os.IsNotExist(err) {
		t.Fatal("quarantined directory survived GC")
	}
}

// TestGCNeverDeletesPinnedOrServing hammers GC against concurrent
// Publish and pinned-version loads (run it under -race): whatever the
// interleaving, retention must never delete the pinned version or the
// newest good version — the two a fleet may be serving from.
func TestGCNeverDeletesPinnedOrServing(t *testing.T) {
	s := openStore(t)
	_, m := quickBuild(t, 9)
	if _, err := s.Publish("race", Artifacts{Model: m}); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("race", "v1"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // retention hammer: keep only the newest good version
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.GC("race", 1); err != nil {
				t.Error("GC:", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // the pin must stay loadable through every interleaving
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.LoadVersion("race", "v1", LoadOpts{}); err != nil {
				t.Error("pinned version vanished mid-GC:", err)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if _, err := s.Publish("race", Artifacts{Model: m}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Resolution honors the pin, and its artifacts must still load.
	set, err := s.LoadLatest("race", LoadOpts{})
	if err != nil {
		t.Fatalf("pinned version unloadable after GC storm: %v", err)
	}
	if set.Version != "v1" {
		t.Fatalf("resolution ignored the pin: got %s", set.Version)
	}
	// Retention also keeps the newest good version alongside the pin.
	vs, err := s.Versions("race")
	if err != nil {
		t.Fatal(err)
	}
	pinned, newest := false, ""
	for _, v := range vs {
		if v.Version == "v1" {
			pinned = true
		} else {
			newest = v.Version
		}
	}
	if !pinned {
		t.Fatal("GC deleted the pinned version from the manifest")
	}
	if newest == "" {
		t.Fatalf("GC kept no version beyond the pin: %v", vs)
	}
	if _, err := s.LoadVersion("race", newest, LoadOpts{}); err != nil {
		t.Fatalf("newest good version %s gone after GC storm: %v", newest, err)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s := openStore(t)
	for _, name := range []string{"", "../escape", "a/b", ".hidden"} {
		if _, err := s.Publish(name, Artifacts{}); err == nil {
			t.Fatalf("accepted model name %q", name)
		}
		if _, err := s.Latest(name); err == nil {
			t.Fatalf("resolved model name %q", name)
		}
	}
}
