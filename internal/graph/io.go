package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/faultinject"
)

// FailpointRead is the chaos-test hook armed to make graph loading fail
// (simulating an unreadable or vanished dataset).
const FailpointRead = "graph/read"

// The text format mirrors the DIMACS shortest-path challenge style the
// paper's datasets ship in, extended with coordinates:
//
//	# comment
//	p <numVertices> <numEdges>
//	v <id> <x> <y>          (numVertices lines, ids 0..n-1)
//	e <u> <v> <weight>      (numEdges lines, undirected)

// Write serializes g in the text edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p %d %d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "v %d %g %g\n", v, g.x[v], g.y[v])
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			if t > v {
				fmt.Fprintf(bw, "e %d %d %g\n", v, t, ws[i])
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph from the text edge-list format.
func Read(r io.Reader) (*Graph, error) {
	if err := faultinject.Check(FailpointRead); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed problem line %q", line, text)
			}
			n, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: malformed problem line %q", line, text)
			}
			b = NewBuilder(capHint(n), capHint(m))
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: vertex before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex line %q", line, text)
			}
			id, err0 := strconv.Atoi(fields[1])
			x, err1 := strconv.ParseFloat(fields[2], 64)
			y, err2 := strconv.ParseFloat(fields[3], 64)
			if err0 != nil || err1 != nil || err2 != nil || !finite(x) || !finite(y) {
				return nil, fmt.Errorf("graph: line %d: malformed vertex line %q", line, text)
			}
			if got := b.AddVertex(x, y); int(got) != id {
				return nil, fmt.Errorf("graph: line %d: vertex ids must be dense and ordered, got %d want %d", line, id, got)
			}
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", line, text)
			}
			u, err0 := strconv.Atoi(fields[1])
			v, err1 := strconv.Atoi(fields[2])
			w, err2 := strconv.ParseFloat(fields[3], 64)
			if err0 != nil || err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", line, text)
			}
			if err := b.AddEdge(int32(u), int32(v), w); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}

// finite reports whether v is a usable coordinate: NaN or infinite
// coordinates would silently poison every geometry-derived structure
// (grid buckets, spatial baselines), so loaders reject them at parse
// time.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// capHint bounds a file-declared size before it becomes an allocation
// hint. Counts in headers are untrusted input: a malformed (or
// malicious) file declaring a billion vertices must not pre-allocate
// gigabytes before the loader has seen a single record. Slices still
// grow to any actual size; only the up-front reservation is capped.
func capHint(n int) int {
	const maxHint = 1 << 20
	if n > maxHint {
		return maxHint
	}
	return n
}

// WriteFile writes g to the named file in the text edge-list format.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses the named file in the text edge-list format.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
