// Package graph provides the weighted road-network representation used
// throughout the repository.
//
// A road network is modeled as in the paper: road joints are vertices,
// road segments are edges, and each edge carries a positive weight (the
// segment length). Edges are undirected — the paper's networks assign
// the same weight in both directions — and are stored in compressed
// sparse row (CSR) form so that neighbor scans are cache-friendly for
// the many Dijkstra runs needed to label training samples.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable weighted road network in CSR form.
// Construct one with a Builder; the zero value is an empty graph.
type Graph struct {
	offsets []int32   // len NumVertices()+1; adjacency range of vertex v is [offsets[v], offsets[v+1])
	targets []int32   // head vertex of each half-edge
	weights []float64 // weight of each half-edge

	// X and Y are planar coordinates of each vertex (longitude/latitude
	// analogues). They drive the Euclidean/Manhattan baselines, the
	// quadtree distance oracle, and the grid buckets of the active
	// fine-tuning sampler.
	x, y []float64
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.x) }

// NumEdges returns |E| counting each undirected edge once.
func (g *Graph) NumEdges() int { return len(g.targets) / 2 }

// NumHalfEdges returns the number of directed half-edges (2|E|).
func (g *Graph) NumHalfEdges() int { return len(g.targets) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency of v as parallel slices of target
// vertices and edge weights. The returned slices alias internal storage
// and must not be modified.
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// X returns the x coordinate of vertex v.
func (g *Graph) X(v int32) float64 { return g.x[v] }

// Y returns the y coordinate of vertex v.
func (g *Graph) Y(v int32) float64 { return g.y[v] }

// Coords returns the coordinate slices for all vertices. The returned
// slices alias internal storage and must not be modified.
func (g *Graph) Coords() (xs, ys []float64) { return g.x, g.y }

// EdgeWeight returns the weight of the edge (u,v) and whether it exists.
func (g *Graph) EdgeWeight(u, v int32) (float64, bool) {
	ts, ws := g.Neighbors(u)
	for i, t := range ts {
		if t == v {
			return ws[i], true
		}
	}
	return 0, false
}

// Euclidean returns the straight-line distance between vertices u and v.
func (g *Graph) Euclidean(u, v int32) float64 {
	dx := g.x[u] - g.x[v]
	dy := g.y[u] - g.y[v]
	return math.Sqrt(dx*dx + dy*dy)
}

// Manhattan returns the L1 coordinate distance between vertices u and v.
func (g *Graph) Manhattan(u, v int32) float64 {
	return math.Abs(g.x[u]-g.x[v]) + math.Abs(g.y[u]-g.y[v])
}

// BoundingBox returns the min/max coordinates over all vertices.
// It returns zeros for an empty graph.
func (g *Graph) BoundingBox() (minX, minY, maxX, maxY float64) {
	if g.NumVertices() == 0 {
		return 0, 0, 0, 0
	}
	minX, maxX = g.x[0], g.x[0]
	minY, maxY = g.y[0], g.y[0]
	for i := 1; i < len(g.x); i++ {
		minX = math.Min(minX, g.x[i])
		maxX = math.Max(maxX, g.x[i])
		minY = math.Min(minY, g.y[i])
		maxY = math.Max(maxY, g.y[i])
	}
	return minX, minY, maxX, maxY
}

// Builder accumulates vertices and undirected edges and produces a
// Graph. Vertices are added implicitly by AddVertex and referenced by
// the dense index it returns.
type Builder struct {
	xs, ys []float64
	us, vs []int32
	ws     []float64
}

// NewBuilder returns a Builder with capacity hints for n vertices and m
// undirected edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		xs: make([]float64, 0, n),
		ys: make([]float64, 0, n),
		us: make([]int32, 0, m),
		vs: make([]int32, 0, m),
		ws: make([]float64, 0, m),
	}
}

// AddVertex appends a vertex at (x, y) and returns its index.
func (b *Builder) AddVertex(x, y float64) int32 {
	b.xs = append(b.xs, x)
	b.ys = append(b.ys, y)
	return int32(len(b.xs) - 1)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.xs) }

// AddEdge appends an undirected edge (u, v) with weight w.
// It returns an error if either endpoint is out of range, u == v, or
// the weight is not a positive finite number.
func (b *Builder) AddEdge(u, v int32, w float64) error {
	n := int32(len(b.xs))
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge (%d,%d) references vertex outside [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	case !(w > 0) || math.IsInf(w, 0):
		return fmt.Errorf("graph: edge (%d,%d) has non-positive or non-finite weight %v", u, v, w)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	return nil
}

// Build finalizes the accumulated vertices and edges into a Graph.
// Duplicate undirected edges are collapsed keeping the smallest weight.
func (b *Builder) Build() *Graph {
	n := len(b.xs)
	g := &Graph{
		x: append([]float64(nil), b.xs...),
		y: append([]float64(nil), b.ys...),
	}

	// Deduplicate undirected edges, keeping the minimum weight.
	type key struct{ u, v int32 }
	best := make(map[key]float64, len(b.us))
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u > v {
			u, v = v, u
		}
		k := key{u, v}
		if w, ok := best[k]; !ok || b.ws[i] < w {
			best[k] = b.ws[i]
		}
	}

	deg := make([]int32, n+1)
	for k := range best {
		deg[k.u+1]++
		deg[k.v+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g.offsets = deg
	g.targets = make([]int32, g.offsets[n])
	g.weights = make([]float64, g.offsets[n])

	next := make([]int32, n)
	copy(next, g.offsets[:n])
	for k, w := range best {
		g.targets[next[k.u]] = k.v
		g.weights[next[k.u]] = w
		next[k.u]++
		g.targets[next[k.v]] = k.u
		g.weights[next[k.v]] = w
		next[k.v]++
	}

	// Sort each adjacency list by target for deterministic iteration.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = int(lo) + i
		}
		sort.Slice(idx, func(a, bIdx int) bool { return g.targets[idx[a]] < g.targets[idx[bIdx]] })
		ts := make([]int32, hi-lo)
		ws := make([]float64, hi-lo)
		for i, j := range idx {
			ts[i] = g.targets[j]
			ws[i] = g.weights[j]
		}
		copy(g.targets[lo:hi], ts)
		copy(g.weights[lo:hi], ws)
	}
	return g
}

// ErrDisconnected reports that a graph is not a single connected component.
var ErrDisconnected = errors.New("graph: not connected")

// ConnectedComponents labels each vertex with a component id in [0, k)
// and returns the labels and the number of components k.
func ConnectedComponents(g *Graph) (labels []int32, k int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for s := int32(0); s < int32(n); s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(k)
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ts, _ := g.Neighbors(v)
			for _, t := range ts {
				if labels[t] < 0 {
					labels[t] = int32(k)
					stack = append(stack, t)
				}
			}
		}
		k++
	}
	return labels, k
}

// LargestComponent returns the subgraph induced by the largest connected
// component together with a mapping old→new vertex ids (-1 for dropped
// vertices). If the graph is already connected it is returned unchanged
// with an identity mapping.
func LargestComponent(g *Graph) (*Graph, []int32) {
	labels, k := ConnectedComponents(g)
	n := g.NumVertices()
	if k <= 1 {
		id := make([]int32, n)
		for i := range id {
			id[i] = int32(i)
		}
		return g, id
	}
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	bestLabel, bestCount := 0, -1
	for l, c := range counts {
		if c > bestCount {
			bestLabel, bestCount = l, c
		}
	}
	remap := make([]int32, n)
	b := NewBuilder(bestCount, bestCount*2)
	for v := 0; v < n; v++ {
		if labels[v] == int32(bestLabel) {
			remap[v] = b.AddVertex(g.x[v], g.y[v])
		} else {
			remap[v] = -1
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if remap[v] < 0 {
			continue
		}
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			if t > v && remap[t] >= 0 {
				// Builder validated these edges once already.
				_ = b.AddEdge(remap[v], remap[t], ws[i])
			}
		}
	}
	return b.Build(), remap
}

// Validate checks structural invariants of the CSR representation and
// that the graph forms a single connected component. It is intended for
// tests and for data loaded from external files.
func Validate(g *Graph) error {
	n := g.NumVertices()
	if len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d want %d", len(g.offsets), n+1)
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		ts, ws := g.Neighbors(int32(v))
		for i, t := range ts {
			if t < 0 || int(t) >= n {
				return fmt.Errorf("graph: vertex %d has neighbor %d outside [0,%d)", v, t, n)
			}
			if t == int32(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if !(ws[i] > 0) {
				return fmt.Errorf("graph: edge (%d,%d) weight %v not positive", v, t, ws[i])
			}
			if w2, ok := g.EdgeWeight(t, int32(v)); !ok || w2 != ws[i] {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, t)
			}
		}
	}
	if _, k := ConnectedComponents(g); k > 1 {
		return fmt.Errorf("%w: %d components", ErrDisconnected, k)
	}
	return nil
}

// InducedSubgraph returns the subgraph induced by the given vertex set
// together with the old→new vertex mapping (-1 for excluded vertices).
// Edges with exactly one endpoint inside the set are dropped, matching
// the paper's definition of graph partitioning.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32) {
	n := g.NumVertices()
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	b := NewBuilder(len(vertices), len(vertices)*2)
	for _, v := range vertices {
		remap[v] = b.AddVertex(g.x[v], g.y[v])
	}
	for _, v := range vertices {
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			if t > v && remap[t] >= 0 {
				_ = b.AddEdge(remap[v], remap[t], ws[i])
			}
		}
	}
	return b.Build(), remap
}
