package graph

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS feeds arbitrary .gr/.co payloads through ReadDIMACS:
// whatever the bytes, the loader must return a well-formed graph or an
// error — never panic, and never hand back a graph that fails the CSR
// invariants. The seed corpus covers the happy path plus each malformed
// shape the parser guards against.
func FuzzParseDIMACS(f *testing.F) {
	const goodCo = "c comment\np aux sp co 3\nv 1 0.0 0.0\nv 2 1.0 0.0\nv 3 0.0 1.0\n"
	const goodGr = "c comment\np sp 3 3\na 1 2 1.5\na 2 1 1.5\na 2 3 2.0\na 3 2 2.0\na 1 3 4.0\na 3 1 4.0\n"
	seeds := [][2]string{
		{goodGr, goodCo},                             // well-formed pair
		{"", ""},                                     // empty inputs
		{goodGr, "p aux sp co 3\nv 1 0 0\n"},         // fewer vertices than declared
		{goodGr, "v 1 0 0\n"},                        // vertex before problem line
		{goodGr, "p aux sp co 999999999\nv 1 0 0\n"}, // absurd declared count
		{goodGr, "p aux sp co 3\nv 7 0 0\n"},         // non-dense ids
		{goodGr, "p aux sp co 3\nv 1 nan inf\n"},     // non-finite coordinates
		{"a 1 2 1\n", goodCo},                        // arc with no problem line (accepted: gr p-line is advisory)
		{"p sp 3 1\na 0 2 1\n", goodCo},              // id underflow to -1
		{"p sp 3 1\na 1 2 -5\n", goodCo},             // negative weight
		{"p sp 3 1\na 1 2 nan\n", goodCo},            // NaN weight
		{"p sp 3 1\na 1 1 1\n", goodCo},              // self loop (dropped)
		{"p sp 3 1\na 1 99999999999999999999 1\n", goodCo}, // overflow id
		{"p sp 3 1\nq 1 2 3\n", goodCo},              // unknown record
		{"p sp 3 1\na 1 2\n", goodCo},                // short arc line
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, gr, co string) {
		g, err := ReadDIMACS(strings.NewReader(gr), strings.NewReader(co))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		// Structural invariants must hold on anything the loader accepts
		// (connectivity is a dataset property, not a parser guarantee).
		n := g.NumVertices()
		for v := int32(0); v < int32(n); v++ {
			ts, ws := g.Neighbors(v)
			for i, u := range ts {
				if u < 0 || int(u) >= n || u == v {
					t.Fatalf("accepted graph has bad neighbor %d of %d", u, v)
				}
				if !(ws[i] > 0) {
					t.Fatalf("accepted graph has non-positive weight %v on (%d,%d)", ws[i], v, u)
				}
			}
		}
	})
}
