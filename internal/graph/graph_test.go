package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, 3)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	b.AddVertex(0, 1)
	for _, e := range [][3]float64{{0, 1, 1}, {1, 2, 2}, {0, 2, 2.5}} {
		if err := b.AddEdge(int32(e[0]), int32(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := buildTriangle(t)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumHalfEdges() != 6 {
		t.Fatalf("NumHalfEdges = %d, want 6", g.NumHalfEdges())
	}
	if got := g.Degree(0); got != 2 {
		t.Fatalf("Degree(0) = %d, want 2", got)
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 2 {
		t.Fatalf("EdgeWeight(1,2) = %v,%v want 2,true", w, ok)
	}
	if w, ok := g.EdgeWeight(2, 1); !ok || w != 2 {
		t.Fatalf("EdgeWeight(2,1) = %v,%v want 2,true (symmetry)", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 0); ok {
		t.Fatal("EdgeWeight(0,0) should not exist")
	}
	if err := Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddVertex(0, 0)
	b.AddVertex(1, 1)
	cases := []struct {
		u, v int32
		w    float64
	}{
		{0, 0, 1},                 // self loop
		{0, 2, 1},                 // out of range
		{-1, 1, 1},                // negative id
		{0, 1, 0},                 // zero weight
		{0, 1, -3},                // negative weight
		{0, 1, math.NaN()},        // NaN weight
		{0, 1, math.Inf(1)},       // +Inf weight
		{int32(5), int32(0), 1.0}, // out of range u
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) accepted, want error", c.u, c.v, c.w)
		}
	}
}

func TestBuilderDeduplicatesKeepingMinWeight(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	for _, w := range []float64{5, 2, 9} {
		if err := b.AddEdge(0, 1, w); err != nil {
			t.Fatal(err)
		}
	}
	// Same edge in reverse orientation too.
	if err := b.AddEdge(1, 0, 7); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("EdgeWeight = %v, want min weight 2", w)
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(5, 6)
	for i := 0; i < 5; i++ {
		b.AddVertex(float64(i), 0)
	}
	for _, v := range []int32{4, 2, 1, 3} {
		if err := b.AddEdge(0, v, float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ts, ws := g.Neighbors(0)
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("neighbors of 0 not sorted: %v", ts)
		}
	}
	for i, v := range ts {
		if ws[i] != float64(v) {
			t.Fatalf("weight misaligned after sort: target %d weight %v", v, ws[i])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(5, 3)
	for i := 0; i < 5; i++ {
		b.AddVertex(float64(i), 0)
	}
	// Components: {0,1,2}, {3,4}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(3, 4, 1)
	g := b.Build()
	labels, k := ConnectedComponents(g)
	if k != 2 {
		t.Fatalf("components = %d, want 2", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("vertices 0,1,2 should share a component: %v", labels)
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatalf("vertices 3,4 should form their own component: %v", labels)
	}
	if err := Validate(g); err == nil {
		t.Fatal("Validate should reject a disconnected graph")
	}

	lg, remap := LargestComponent(g)
	if lg.NumVertices() != 3 {
		t.Fatalf("largest component has %d vertices, want 3", lg.NumVertices())
	}
	if remap[3] != -1 || remap[4] != -1 {
		t.Fatalf("dropped vertices should map to -1: %v", remap)
	}
	if err := Validate(lg); err != nil {
		t.Fatalf("Validate(largest): %v", err)
	}
}

func TestLargestComponentIdentityWhenConnected(t *testing.T) {
	g := buildTriangle(t)
	lg, remap := LargestComponent(g)
	if lg != g {
		t.Fatal("connected graph should be returned unchanged")
	}
	for i, m := range remap {
		if int(m) != i {
			t.Fatalf("identity mapping expected, remap[%d]=%d", i, m)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTriangle(t)
	sub, remap := InducedSubgraph(g, []int32{0, 1})
	if sub.NumVertices() != 2 {
		t.Fatalf("sub vertices = %d, want 2", sub.NumVertices())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("sub edges = %d, want 1 (only 0-1 kept)", sub.NumEdges())
	}
	if remap[2] != -1 {
		t.Fatalf("vertex 2 should be dropped, remap=%v", remap)
	}
	if w, ok := sub.EdgeWeight(remap[0], remap[1]); !ok || w != 1 {
		t.Fatalf("kept edge weight %v,%v want 1,true", w, ok)
	}
}

func TestGeometryHelpers(t *testing.T) {
	g := buildTriangle(t)
	if d := g.Euclidean(0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Euclidean(0,1) = %v, want 1", d)
	}
	if d := g.Manhattan(1, 2); math.Abs(d-2) > 1e-12 {
		t.Fatalf("Manhattan(1,2) = %v, want 2", d)
	}
	minX, minY, maxX, maxY := g.BoundingBox()
	if minX != 0 || minY != 0 || maxX != 1 || maxY != 1 {
		t.Fatalf("BoundingBox = %v %v %v %v, want 0 0 1 1", minX, minY, maxX, maxY)
	}
}

func TestBoundingBoxEmpty(t *testing.T) {
	g := NewBuilder(0, 0).Build()
	minX, minY, maxX, maxY := g.BoundingBox()
	if minX != 0 || minY != 0 || maxX != 0 || maxY != 0 {
		t.Fatal("empty graph bounding box should be zeros")
	}
}

func TestIORoundTrip(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.X(v) != g2.X(v) || g.Y(v) != g2.Y(v) {
			t.Fatalf("vertex %d coordinates changed", v)
		}
		ts, ws := g.Neighbors(v)
		ts2, ws2 := g2.Neighbors(v)
		if len(ts) != len(ts2) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range ts {
			if ts[i] != ts2[i] || ws[i] != ws2[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                   // empty
		"v 0 0 0\n",                          // vertex before header
		"e 0 1 1\n",                          // edge before header
		"p 1\n",                              // short header
		"p 2 1\nv 1 0 0\n",                   // non-dense vertex id
		"p 2 1\nv 0 0 0\nv 1 0 0\ne 0 1 x\n", // bad weight
		"p 2 1\nv 0 0 0\nv 1 0 0\nq 1 2 3\n", // unknown record
		"p 2 1\nv 0 0 0\nv 1 0 0\ne 0 5 1\n", // edge out of range
	}
	for _, s := range bad {
		if _, err := Read(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("Read(%q) succeeded, want error", s)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	src := "# header comment\n\np 2 1\nv 0 0 0\n# middle\nv 1 3 4\ne 0 1 5\n"
	g, err := Read(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d/%d, want 2/1", g.NumVertices(), g.NumEdges())
	}
	if d := g.Euclidean(0, 1); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Euclidean = %v, want 5", d)
	}
}

// randomConnectedGraph builds a random connected graph with n vertices:
// a random spanning tree plus extra random edges.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	b := NewBuilder(n, n+extra)
	for i := 0; i < n; i++ {
		b.AddVertex(rng.Float64()*100, rng.Float64()*100)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := int32(perm[i])
		v := int32(perm[rng.Intn(i)])
		_ = b.AddEdge(u, v, 0.1+rng.Float64()*10)
	}
	for i := 0; i < extra; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.1+rng.Float64()*10)
		}
	}
	return b.Build()
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(60)
		g := randomConnectedGraph(rng, n, rng.Intn(3*n))
		if err := Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestComponentCountProperty(t *testing.T) {
	// Property: dropping to the largest component always yields a graph
	// with exactly one component, and never more vertices than before.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%40)
		b := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			b.AddVertex(rng.Float64(), rng.Float64())
		}
		// Sparse random edges: possibly disconnected.
		for i := 0; i < n/2; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v, 1+rng.Float64())
			}
		}
		g := b.Build()
		lg, _ := LargestComponent(g)
		_, k := ConnectedComponents(lg)
		return k == 1 && lg.NumVertices() <= g.NumVertices() && lg.NumVertices() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
