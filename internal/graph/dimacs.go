package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/faultinject"
)

// FailpointReadDIMACS is the chaos-test hook armed to make DIMACS
// loading fail.
const FailpointReadDIMACS = "graph/read-dimacs"

// DIMACS support: the 9th DIMACS Implementation Challenge format that
// the paper's FLA and US-W datasets ship in. A network is a pair of
// files — a ".gr" graph file with "a <u> <v> <w>" arc lines and a ".co"
// coordinate file with "v <id> <x> <y>" lines — using 1-based vertex
// ids. Arcs appear in both directions; ReadDIMACS collapses them into
// undirected edges keeping the smaller weight.

// ReadDIMACS parses a DIMACS .gr/.co reader pair into a Graph.
func ReadDIMACS(gr, co io.Reader) (*Graph, error) {
	if err := faultinject.Check(FailpointReadDIMACS); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	// Coordinates first: they declare the vertex count.
	coSc := bufio.NewScanner(co)
	coSc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	n := 0
	line := 0
	for coSc.Scan() {
		line++
		fields, skip := dimacsFields(coSc.Text())
		if skip {
			continue
		}
		switch fields[0] {
		case "p":
			// "p aux sp co <n>"
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: co line %d: malformed problem line", line)
			}
			var err error
			n, err = strconv.Atoi(fields[len(fields)-1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("graph: co line %d: bad vertex count", line)
			}
			b = NewBuilder(capHint(n), capHint(n)*2)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph: co line %d: vertex before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: co line %d: want 'v id x y'", line)
			}
			id, err0 := strconv.Atoi(fields[1])
			x, err1 := strconv.ParseFloat(fields[2], 64)
			y, err2 := strconv.ParseFloat(fields[3], 64)
			if err0 != nil || err1 != nil || err2 != nil || !finite(x) || !finite(y) {
				return nil, fmt.Errorf("graph: co line %d: malformed vertex", line)
			}
			if got := b.AddVertex(x, y); int(got) != id-1 {
				return nil, fmt.Errorf("graph: co line %d: ids must be dense 1..n, got %d want %d", line, id, got+1)
			}
		default:
			return nil, fmt.Errorf("graph: co line %d: unknown record %q", line, fields[0])
		}
	}
	if err := coSc.Err(); err != nil {
		return nil, err
	}
	if b == nil || b.NumVertices() != n {
		return nil, fmt.Errorf("graph: coordinate file declared %d vertices, found %d", n, bNumVertices(b))
	}

	grSc := bufio.NewScanner(gr)
	grSc.Buffer(make([]byte, 1<<20), 1<<20)
	line = 0
	sawArc := false
	for grSc.Scan() {
		line++
		fields, skip := dimacsFields(grSc.Text())
		if skip {
			continue
		}
		switch fields[0] {
		case "p":
			// "p sp <n> <m>" — trust the coordinate file's n.
		case "a":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: gr line %d: want 'a u v w'", line)
			}
			u, err0 := strconv.Atoi(fields[1])
			v, err1 := strconv.Atoi(fields[2])
			w, err2 := strconv.ParseFloat(fields[3], 64)
			if err0 != nil || err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: gr line %d: malformed arc", line)
			}
			if u == v {
				continue // DIMACS data occasionally carries self loops; drop them
			}
			if err := b.AddEdge(int32(u-1), int32(v-1), w); err != nil {
				return nil, fmt.Errorf("graph: gr line %d: %w", line, err)
			}
			sawArc = true
		default:
			return nil, fmt.Errorf("graph: gr line %d: unknown record %q", line, fields[0])
		}
	}
	if err := grSc.Err(); err != nil {
		return nil, err
	}
	if !sawArc {
		return nil, fmt.Errorf("graph: gr file contains no arcs")
	}
	return b.Build(), nil
}

// ReadDIMACSFiles parses the named .gr/.co file pair.
func ReadDIMACSFiles(grPath, coPath string) (*Graph, error) {
	grF, err := os.Open(grPath)
	if err != nil {
		return nil, err
	}
	defer grF.Close()
	coF, err := os.Open(coPath)
	if err != nil {
		return nil, err
	}
	defer coF.Close()
	return ReadDIMACS(grF, coF)
}

// dimacsFields splits a line, reporting skip for blanks and "c" comment
// lines.
func dimacsFields(text string) ([]string, bool) {
	text = strings.TrimSpace(text)
	if text == "" || strings.HasPrefix(text, "c") {
		return nil, true
	}
	return strings.Fields(text), false
}

func bNumVertices(b *Builder) int {
	if b == nil {
		return 0
	}
	return b.NumVertices()
}
