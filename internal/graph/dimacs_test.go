package graph

import (
	"strings"
	"testing"
)

const (
	dimacsCo = `c coordinates
p aux sp co 4
v 1 0 0
v 2 100 0
v 3 0 100
v 4 100 100
`
	dimacsGr = `c arcs
p sp 4 10
a 1 2 100
a 2 1 100
a 1 3 100
a 3 1 100
a 2 4 120
a 4 2 110
a 3 4 100
a 4 3 100
a 1 1 5
`
)

func TestReadDIMACS(t *testing.T) {
	g, err := ReadDIMACS(strings.NewReader(dimacsGr), strings.NewReader(dimacsCo))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4 (arcs collapsed, self-loop dropped)", g.NumEdges())
	}
	// Asymmetric arc weights collapse to the minimum.
	if w, ok := g.EdgeWeight(1, 3); !ok || w != 110 {
		t.Fatalf("edge (2,4) weight %v,%v want 110 (min of 120/110)", w, ok)
	}
	// 1-based ids shifted to 0-based, coordinates attached.
	if g.X(3) != 100 || g.Y(3) != 100 {
		t.Fatalf("vertex 4 coordinates (%v,%v)", g.X(3), g.Y(3))
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestReadDIMACSMalformed(t *testing.T) {
	cases := []struct{ gr, co string }{
		{dimacsGr, "v 1 0 0\n"},                         // vertex before problem line
		{dimacsGr, "p aux sp co 2\nv 1 0 0\n"},          // undersized co file
		{dimacsGr, "p aux sp co 2\nv 2 0 0\nv 1 0 0\n"}, // non-dense ids
		{"p sp 4 1\na 1 9 5\n", dimacsCo},               // arc out of range
		{"p sp 4 1\na 1 x 5\n", dimacsCo},               // bad arc field
		{"p sp 4 0\n", dimacsCo},                        // no arcs at all
		{"z 1 2 3\n", dimacsCo},                         // unknown gr record
		{dimacsGr, "p aux sp co 4\nq 1 0 0\n"},          // unknown co record
	}
	for i, c := range cases {
		if _, err := ReadDIMACS(strings.NewReader(c.gr), strings.NewReader(c.co)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
