#!/bin/sh
# shard-smoke: geo-sharded serving end to end through the real binaries.
#
# Publish a bj-mini model cut into two level-1 region shards, boot one
# rneserver -shard replica per shard plus a full replica, put rnegate
# in region-routing mode (-shard-map) in front, and assert:
#
#   1. intra-shard /distance answers through the gateway are
#      bit-identical to the full replica (whenever the full replica's
#      answer is unclamped — the shard's restricted guard is never
#      tighter, so an unclamped full answer must come back verbatim);
#   2. cross-shard answers are flagged and sit inside their certified
#      [lo, hi] guard interval;
#   3. every shard replica's resident embedding bytes
#      (rne_model_bytes{component="embeddings"}) are strictly below
#      the full replica's;
#   4. killing one shard's replica degrades exactly that region: its
#      vertices answer 503, the other region keeps answering 200, and
#      /readyz reports degraded with the dead shard listed;
#   5. a short rneload ramp against the full replica and the sharded
#      gateway lands in one BENCH_shard.json (full vs sharded
#      latency + per-replica heap from the /metrics join).
#
# SHARD_BENCH_OUT copies the resulting BENCH_shard.json out of the
# scratch directory.
set -eu

GO=${GO:-go}
PF=${SHARD_SMOKE_PORT_F:-18380}
P0=${SHARD_SMOKE_PORT_0:-18381}
P1=${SHARD_SMOKE_PORT_1:-18382}
PG=${SHARD_SMOKE_PORT_G:-18383}
BENCH_OUT=${SHARD_BENCH_OUT:-}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver
$GO build -o "$TMP/rnegate" ./cmd/rnegate
$GO build -o "$TMP/rneload" ./cmd/rneload

# One build, one publish: the version carries the full model, the ALT
# guard, and the two shard artifacts cut at level 1.
"$TMP/rnebuild" -preset bj-mini -dim 16 -epochs 2 -seed 1 -report "" \
    -alt-out "$TMP/alt.idx" -alt-landmarks 16 \
    -registry "$TMP/models" -publish bj \
    -publish-shards -shard-level 1 -shard-count 2 \
    -o "$TMP/m.rne" >"$TMP/build.log" 2>&1 \
    || { echo "shard-smoke: sharded publish failed"; cat "$TMP/build.log"; exit 1; }

SHARDMAP="$TMP/models/bj/v1/shards/shardmap.rnemap"
[ -f "$SHARDMAP" ] || { echo "shard-smoke: $SHARDMAP not published"; exit 1; }

"$TMP/rneserver" -registry "$TMP/models" -name bj -addr "127.0.0.1:$PF" \
    >"$TMP/full.log" 2>&1 &
PIDS="$PIDS $!"
"$TMP/rneserver" -registry "$TMP/models" -name bj -shard 0 -addr "127.0.0.1:$P0" \
    >"$TMP/s0.log" 2>&1 &
PIDS="$PIDS $!"
"$TMP/rneserver" -registry "$TMP/models" -name bj -shard 1 -addr "127.0.0.1:$P1" \
    >"$TMP/s1.log" 2>&1 &
S1_PID=$!
PIDS="$PIDS $S1_PID"
"$TMP/rnegate" -addr "127.0.0.1:$PG" \
    -backends "http://127.0.0.1:$P0,http://127.0.0.1:$P1" \
    -shard-map "$SHARDMAP" \
    -health-interval 100ms -eject-after 1 -backoff-base 100ms \
    >"$TMP/gate.log" 2>&1 &
PIDS="$PIDS $!"

full="http://127.0.0.1:$PF"
gate="http://127.0.0.1:$PG"
wait_200() {
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -gt 200 ] && return 1
        sleep 0.1
    done
}
wait_200 "$full/healthz" || { echo "shard-smoke: full replica never came up"; cat "$TMP/full.log"; exit 1; }
wait_200 "http://127.0.0.1:$P0/healthz" || { echo "shard-smoke: shard 0 never came up"; cat "$TMP/s0.log"; exit 1; }
wait_200 "http://127.0.0.1:$P1/healthz" || { echo "shard-smoke: shard 1 never came up"; cat "$TMP/s1.log"; exit 1; }
wait_200 "$gate/readyz" || { echo "shard-smoke: gateway never became ready"; cat "$TMP/gate.log"; exit 1; }

field() { # field <json> <key> -> bare value or empty
    printf '%s' "$1" | sed -n "s/.*\"$2\":\([^,}]*\).*/\1/p"
}

# 1 + 2: walk a seeded workload through the gateway; classify each
# answer by its own cross_shard flag so both regimes are exercised.
intra=0
cross=0
for s in 0 7 123 512 1024 2048 3000 4095 5000 6000 7000 8097; do
    for t in 3 4050 8001 8096; do
        g_resp=$(curl -sf "$gate/distance?s=$s&t=$t") \
            || { echo "shard-smoke: gateway /distance s=$s t=$t failed"; cat "$TMP/gate.log"; exit 1; }
        d=$(field "$g_resp" distance)
        lo=$(field "$g_resp" lo)
        hi=$(field "$g_resp" hi)
        [ -n "$d" ] && [ -n "$lo" ] && [ -n "$hi" ] \
            || { echo "shard-smoke: unguarded gateway answer: $g_resp"; exit 1; }
        if ! awk -v d="$d" -v lo="$lo" -v hi="$hi" 'BEGIN{exit !(lo<=d && d<=hi)}'; then
            echo "shard-smoke: s=$s t=$t answer $d outside certified [$lo,$hi]"
            exit 1
        fi
        case "$g_resp" in
        *'"cross_shard":true'*)
            cross=$((cross + 1))
            ;;
        *)
            f_resp=$(curl -sf "$full/distance?s=$s&t=$t") \
                || { echo "shard-smoke: full replica /distance s=$s t=$t failed"; exit 1; }
            if [ "$(field "$f_resp" clamped)" = "false" ]; then
                intra=$((intra + 1))
                fd=$(field "$f_resp" distance)
                if [ "$d" != "$fd" ]; then
                    echo "shard-smoke: intra-shard s=$s t=$t: gateway $d != full replica $fd (must be bit-identical)"
                    exit 1
                fi
            fi
            ;;
        esac
    done
done
if [ "$intra" -lt 1 ] || [ "$cross" -lt 1 ]; then
    echo "shard-smoke: workload did not exercise both regimes (intra=$intra cross=$cross)"
    exit 1
fi

# 3: each shard's resident embedding rows are strictly below the full
# replica's.
emb_bytes() {
    curl -sf "$1/metrics" | sed -n 's/^rne_model_bytes{component="embeddings"} //p'
}
fb=$(emb_bytes "$full")
b0=$(emb_bytes "http://127.0.0.1:$P0")
b1=$(emb_bytes "http://127.0.0.1:$P1")
[ -n "$fb" ] && [ -n "$b0" ] && [ -n "$b1" ] \
    || { echo "shard-smoke: rne_model_bytes{component=\"embeddings\"} missing (full=$fb s0=$b0 s1=$b1)"; exit 1; }
for b in "$b0" "$b1"; do
    if ! awk -v s="$b" -v f="$fb" 'BEGIN{exit !(s<f)}'; then
        echo "shard-smoke: shard embeddings $b not below full $fb"
        exit 1
    fi
done

# 5 (before the kill): full-vs-sharded comparison in one report.
BENCH="$TMP/BENCH_shard.json"
"$TMP/rneload" -target "$full" \
    -steps 'c=2,qps=0,d=1s,w=300ms' -mix distance=1 \
    -name full -tags mode=full -out "$BENCH" \
    >"$TMP/load-full.log" 2>&1 || { echo "shard-smoke: full-replica load run failed"; cat "$TMP/load-full.log"; exit 1; }
"$TMP/rneload" -target "$gate" -vertices 8098 \
    -steps 'c=2,qps=0,d=1s,w=300ms' -mix distance=1 \
    -scrape "gate=$gate,s0=http://127.0.0.1:$P0,s1=http://127.0.0.1:$P1" \
    -name sharded -tags mode=sharded,shards=2 -append -out "$BENCH" \
    >"$TMP/load-sharded.log" 2>&1 || { echo "shard-smoke: sharded load run failed"; cat "$TMP/load-sharded.log"; exit 1; }
for want in '"name": "full"' '"name": "sharded"' '"class": "2xx"' 'rne_go_heap_bytes'; do
    grep -q "$want" "$BENCH" || { echo "shard-smoke: BENCH_shard.json missing $want"; cat "$BENCH"; exit 1; }
done

# 4: kill shard 1's only replica — its region degrades, shard 0's
# region keeps serving, and the gateway names the dead shard.
kill "$S1_PID" 2>/dev/null || true
wait "$S1_PID" 2>/dev/null || true

dead=""
alive=""
i=0
while [ -z "$dead" ] || [ -z "$alive" ]; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "shard-smoke: regions never split into dead/alive after the kill (dead=$dead alive=$alive)"
        cat "$TMP/gate.log"
        exit 1
    fi
    for s in 0 7 123 512 1024 2048 3000 4095 5000 6000 7000 8097; do
        code=$(curl -s -o /dev/null -w '%{http_code}' "$gate/distance?s=$s&t=$s")
        case "$code" in
        200) alive=$s ;;
        503) dead=$s ;;
        esac
        [ -n "$dead" ] && [ -n "$alive" ] && break
    done
    sleep 0.1
done
if ! curl -s "$gate/distance?s=$dead&t=$alive" | grep -q 'degraded'; then
    echo "shard-smoke: dead region's 503 does not say degraded"
    exit 1
fi
i=0
until curl -s "$gate/readyz" | grep -q '"shards_down":\[1\]'; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "shard-smoke: /readyz never listed shard 1 down"
        curl -s "$gate/readyz"
        exit 1
    fi
    sleep 0.1
done
code=$(curl -s -o /dev/null -w '%{http_code}' "$gate/distance?s=$alive&t=$dead")
if [ "$code" != 200 ]; then
    echo "shard-smoke: surviving region answered $code after the kill"
    exit 1
fi

if [ -n "$BENCH_OUT" ]; then
    cp "$BENCH" "$BENCH_OUT"
    echo "shard-smoke: wrote $BENCH_OUT"
fi
echo "shard-smoke: 2-shard fleet served intra bit-identical ($intra pairs), cross in bounds ($cross pairs), shed only the dead region"
