#!/bin/sh
# load-smoke: the load harness end to end through the real binaries.
#
# A short ramp (closed loop, then a paced open loop) is driven twice:
# against a single rneserver replica, then against rnegate fronting two
# replicas — both runs appended into one BENCH_load.json. The
# invariants:
#
#   1. both runs complete with measured 2xx traffic on every exercised
#      route and a positive achieved rate;
#   2. the client/server join is non-empty: each step carries counter
#      deltas from the scraped /metrics (requests served, by class) and
#      the Go runtime gauges (goroutines, heap) the serving tier now
#      exports;
#   3. pprof capture from the replica's -debug-addr worked (a non-empty
#      heap profile was fetched mid-step);
#   4. the report holds exactly the two named runs, so the
#      single-replica vs gateway comparison is present in one file.
#
# LOAD_BENCH_OUT copies the resulting BENCH_load.json out of the
# scratch directory.
set -eu

GO=${GO:-go}
PA=${LOAD_SMOKE_PORT_A:-18390}
PB=${LOAD_SMOKE_PORT_B:-18391}
PG=${LOAD_SMOKE_PORT_G:-18392}
PD=${LOAD_SMOKE_PORT_D:-18393}
BENCH_OUT=${LOAD_BENCH_OUT:-}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -o "$TMP/g.txt"
$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver
$GO build -o "$TMP/rnegate" ./cmd/rnegate
$GO build -o "$TMP/rneload" ./cmd/rneload

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 1 -report "" \
    -o "$TMP/m.rne" >/dev/null 2>&1

wait_200() {
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -gt 100 ] && return 1
        sleep 0.1
    done
}

# Replica A carries the operator listener so the harness's pprof
# capture path is exercised, not just compiled.
"$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$PA" \
    -debug-addr "127.0.0.1:$PD" -request-timeout 5s \
    >"$TMP/srv-a.log" 2>&1 &
PIDS="$PIDS $!"
"$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$PB" \
    -request-timeout 5s >"$TMP/srv-b.log" 2>&1 &
PIDS="$PIDS $!"
wait_200 "http://127.0.0.1:$PA/healthz" || { echo "load-smoke: replica A never came up"; cat "$TMP/srv-a.log"; exit 1; }
wait_200 "http://127.0.0.1:$PB/healthz" || { echo "load-smoke: replica B never came up"; cat "$TMP/srv-b.log"; exit 1; }

BENCH="$TMP/BENCH_load.json"

# Run 1: single replica, mixed routes, closed loop then 100 qps open
# loop, heap profile captured from the debug listener at step end.
"$TMP/rneload" -target "http://127.0.0.1:$PA" \
    -steps 'c=2,qps=0,d=1s,w=300ms;c=2,qps=100,d=1s,w=300ms' \
    -mix distance=8,batch=1,knn=1 -batch-size 8 \
    -debug-url "http://127.0.0.1:$PD" -profile-heap -profile-dir "$TMP/profiles" \
    -name replica -tags replicas=1 -out "$BENCH" \
    >"$TMP/load-replica.log" 2>&1 || { echo "load-smoke: replica run failed"; cat "$TMP/load-replica.log"; exit 1; }

# Run 2: the gateway over both replicas (no /knn there), joined against
# the gateway and both backends, appended into the same report.
"$TMP/rnegate" -addr "127.0.0.1:$PG" \
    -backends "http://127.0.0.1:$PA,http://127.0.0.1:$PB" \
    -health-interval 100ms -request-timeout 5s \
    >"$TMP/gate.log" 2>&1 &
PIDS="$PIDS $!"
wait_200 "http://127.0.0.1:$PG/readyz" || { echo "load-smoke: gateway never became ready"; cat "$TMP/gate.log"; exit 1; }

"$TMP/rneload" -target "http://127.0.0.1:$PG" -vertices 100 \
    -steps 'c=2,qps=0,d=1s,w=300ms;c=2,qps=100,d=1s,w=300ms' \
    -mix distance=8,batch=1 -batch-size 8 \
    -scrape "gate=http://127.0.0.1:$PG,r1=http://127.0.0.1:$PA,r2=http://127.0.0.1:$PB" \
    -name gateway -tags replicas=2 -append -out "$BENCH" \
    >"$TMP/load-gateway.log" 2>&1 || { echo "load-smoke: gateway run failed"; cat "$TMP/load-gateway.log"; exit 1; }

# Invariant 1+2+4: both named runs present, 2xx traffic measured, and
# the join carries server counter deltas and runtime gauges.
for want in '"name": "replica"' '"name": "gateway"' \
    '"class": "2xx"' '"counters_delta"' \
    'rne_http_requests_total{class' 'rne_go_goroutines' 'rne_go_heap_bytes'; do
    grep -q "$want" "$BENCH" || {
        echo "load-smoke: BENCH_load.json missing $want"
        cat "$BENCH"
        exit 1
    }
done
runs=$(grep -c '"target":' "$BENCH")
if [ "$runs" != 2 ]; then
    echo "load-smoke: report has $runs runs, want 2 (replica + gateway)"
    exit 1
fi
if grep -q '"scrape_error"' "$BENCH"; then
    echo "load-smoke: a scrape failed — the join is incomplete"
    grep '"scrape_error"' "$BENCH"
    exit 1
fi

# Invariant 3: the heap profile was actually captured.
prof=$(find "$TMP/profiles" -name '*-heap.pprof' -size +0c | wc -l)
if [ "$prof" -lt 1 ]; then
    echo "load-smoke: no non-empty heap profile captured from -debug-addr"
    ls -la "$TMP/profiles" 2>/dev/null || true
    cat "$TMP/load-replica.log"
    exit 1
fi

if [ -n "$BENCH_OUT" ]; then
    cp "$BENCH" "$BENCH_OUT"
    echo "load-smoke: wrote $BENCH_OUT"
fi
echo "load-smoke: 2 runs joined (replica + 2-replica gateway), $prof heap profile(s) captured"
