#!/bin/sh
# swap-smoke: end-to-end model lifecycle check.
#
# Publish v1 to a fresh registry, serve it with rneserver -registry,
# publish v2, SIGHUP the server, and assert the serving version flips
# to v2 while a concurrent request hammer sees zero failed requests —
# the zero-downtime hot-swap contract, exercised through the real
# binaries rather than httptest.
set -eu

GO=${GO:-go}
PORT=${SWAP_SMOKE_PORT:-18371}
TMP=$(mktemp -d)
SRV_PID=""
HAMMER_PID=""
cleanup() {
    [ -n "$HAMMER_PID" ] && kill "$HAMMER_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -o "$TMP/g.txt"
$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 1 -report "" \
    -o "$TMP/m1.rne" -registry "$TMP/reg" -publish demo -publish-compact >/dev/null 2>&1

"$TMP/rneserver" -registry "$TMP/reg" -name demo -addr "127.0.0.1:$PORT" \
    >"$TMP/server.log" 2>&1 &
SRV_PID=$!

base="http://127.0.0.1:$PORT"
i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "swap-smoke: server never came up"
        cat "$TMP/server.log"
        exit 1
    fi
    sleep 0.1
done
if ! curl -sf "$base/healthz" | grep -q '"version":"v1"'; then
    echo "swap-smoke: expected registry v1 to be serving"
    curl -s "$base/healthz" || true
    exit 1
fi

# Hammer /distance for the whole publish + SIGHUP window; every failed
# request leaves a line in $TMP/failures.
(
    while :; do
        curl -sf "$base/distance?s=3&t=77" >/dev/null 2>&1 || echo fail >>"$TMP/failures"
    done
) &
HAMMER_PID=$!

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 2 -report "" \
    -o "$TMP/m2.rne" -registry "$TMP/reg" -publish demo -publish-compact >/dev/null 2>&1

kill -HUP "$SRV_PID"
i=0
until curl -sf "$base/healthz" | grep -q '"version":"v2"'; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "swap-smoke: serving version never flipped to v2"
        cat "$TMP/server.log"
        exit 1
    fi
    sleep 0.1
done

kill "$HAMMER_PID" 2>/dev/null || true
wait "$HAMMER_PID" 2>/dev/null || true
HAMMER_PID=""

if [ -s "$TMP/failures" ]; then
    echo "swap-smoke: $(wc -l <"$TMP/failures") requests failed during the hot swap"
    exit 1
fi
if ! curl -sf "$base/metrics" | grep -q '^rne_model_swaps_total 1'; then
    echo "swap-smoke: rne_model_swaps_total did not count the swap"
    exit 1
fi
echo "swap-smoke: v1 -> v2 hot swap with zero failed requests"
