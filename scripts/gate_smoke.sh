#!/bin/sh
# gate-smoke: scale-out tier check through the real binaries.
#
# Start two rneserver replicas over the same model, put rnegate in
# front of them, and assert (1) a fanned-out /batch merges to a full
# answer, (2) killing one replica leaves /batch serving — the dead
# backend's sub-batch fails over to the survivor and the backend is
# ejected from routing — and (3) the gateway reports the degradation
# on /readyz and counts the ejection on /metrics.
set -eu

GO=${GO:-go}
PA=${GATE_SMOKE_PORT_A:-18372}
PB=${GATE_SMOKE_PORT_B:-18373}
PG=${GATE_SMOKE_PORT_G:-18374}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -o "$TMP/g.txt"
$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver
$GO build -o "$TMP/rnegate" ./cmd/rnegate

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 1 -report "" \
    -o "$TMP/m.rne" >/dev/null 2>&1

"$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$PA" >"$TMP/a.log" 2>&1 &
A_PID=$!
PIDS="$PIDS $A_PID"
"$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$PB" >"$TMP/b.log" 2>&1 &
B_PID=$!
PIDS="$PIDS $B_PID"
"$TMP/rnegate" -addr "127.0.0.1:$PG" \
    -backends "http://127.0.0.1:$PA,http://127.0.0.1:$PB" \
    -health-interval 100ms -eject-after 1 -backoff-base 100ms \
    >"$TMP/gate.log" 2>&1 &
G_PID=$!
PIDS="$PIDS $G_PID"

gate="http://127.0.0.1:$PG"
wait_200() {
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -gt 100 ] && return 1
        sleep 0.1
    done
}
wait_200 "http://127.0.0.1:$PA/healthz" || { echo "gate-smoke: backend A never came up"; cat "$TMP/a.log"; exit 1; }
wait_200 "http://127.0.0.1:$PB/healthz" || { echo "gate-smoke: backend B never came up"; cat "$TMP/b.log"; exit 1; }
wait_200 "$gate/readyz" || { echo "gate-smoke: gateway never became ready"; cat "$TMP/gate.log"; exit 1; }

body='{"pairs":[[0,99],[17,42],[3,61],[88,5]]}'
if ! curl -sf -d "$body" "$gate/batch" | grep -q '"distances"'; then
    echo "gate-smoke: fan-out /batch failed with both backends up"
    cat "$TMP/gate.log"
    exit 1
fi

kill "$B_PID" 2>/dev/null || true
wait "$B_PID" 2>/dev/null || true

# The first request after the kill may hit the dead backend; the
# gateway must retry its sub-batch onto the survivor and still answer.
if ! curl -sf -d "$body" "$gate/batch" | grep -q '"distances"'; then
    echo "gate-smoke: /batch failed with one backend down"
    cat "$TMP/gate.log"
    exit 1
fi
i=0
until curl -s "$gate/readyz" | grep -q '"status":"degraded"'; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "gate-smoke: ejection never reflected on /readyz"
        cat "$TMP/gate.log"
        exit 1
    fi
    sleep 0.1
done
if ! curl -sf -d "$body" "$gate/batch" | grep -q '"distances"'; then
    echo "gate-smoke: /batch failed after ejection"
    exit 1
fi
if ! curl -sf "$gate/metrics" | grep -q '^rne_gateway_ejections_total 1'; then
    echo "gate-smoke: ejection not counted on /metrics"
    exit 1
fi
echo "gate-smoke: /batch served with one of two backends ejected"
