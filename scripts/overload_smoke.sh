#!/bin/sh
# overload-smoke: overload-safety drill through the real binaries.
#
# Three capacity-starved rneserver replicas (tiny -max-inflight) behind
# rnegate, hammered past fleet capacity with one replica killed
# mid-run. The invariants:
#
#   1. every client-observed status is 200, 206, 429 or 504 — overload
#      and a crashed replica degrade service, they never produce 5xx
#      chaos or dropped connections;
#   2. shedding actually happened (at least one 429: the drill
#      saturated) and goodput survives the kill (2xx after it);
#   3. a /batch aimed at the dead shard through a no-retry gateway
#      degrades to a partial 206 — surviving pairs bit-identical to the
#      healthy fleet's answer, failed pairs null with per-pair error
#      entries — instead of failing whole.
#
# OVERLOAD_BENCH_OUT writes a BENCH_overload.json with offered load,
# goodput, shed rate and client p99.
set -eu

GO=${GO:-go}
PA=${OVERLOAD_SMOKE_PORT_A:-18382}
PB=${OVERLOAD_SMOKE_PORT_B:-18383}
PC=${OVERLOAD_SMOKE_PORT_C:-18384}
PG=${OVERLOAD_SMOKE_PORT_G:-18385}
PN=${OVERLOAD_SMOKE_PORT_N:-18386}
BENCH_OUT=${OVERLOAD_BENCH_OUT:-}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -o "$TMP/g.txt"
$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver
$GO build -o "$TMP/rnegate" ./cmd/rnegate

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 1 -report "" \
    -o "$TMP/m.rne" >/dev/null 2>&1

# Replicas with a single-slot in-flight cap: 24 parallel clients are
# many times fleet capacity, so admission shedding is guaranteed to fire.
for port in $PA $PB $PC; do
    "$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$port" \
        -max-inflight 1 -request-timeout 5s >"$TMP/srv-$port.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "PID_$port=$!"
done

backends="http://127.0.0.1:$PA,http://127.0.0.1:$PB,http://127.0.0.1:$PC"
# The hammered gateway: fast health checks, bounded retries.
"$TMP/rnegate" -addr "127.0.0.1:$PG" -backends "$backends" \
    -health-interval 100ms -eject-after 2 -backoff-base 100ms \
    -retry-budget 0.2 -backend-timeout 2s -request-timeout 5s \
    >"$TMP/gate.log" 2>&1 &
PIDS="$PIDS $!"
# The no-retry gateway proves partial degradation: with retries
# disabled and ejection effectively off, a batch whose shard is dead
# must come back 206 with per-pair errors, not fail over silently.
"$TMP/rnegate" -addr "127.0.0.1:$PN" -backends "$backends" \
    -health-interval 10s -eject-after 1000 -retry-budget -1 \
    >"$TMP/gate-noretry.log" 2>&1 &
PIDS="$PIDS $!"

gate="http://127.0.0.1:$PG"
noretry="http://127.0.0.1:$PN"
wait_200() {
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -gt 100 ] && return 1
        sleep 0.1
    done
}
for port in $PA $PB $PC; do
    wait_200 "http://127.0.0.1:$port/healthz" || { echo "overload-smoke: replica on $port never came up"; cat "$TMP/srv-$port.log"; exit 1; }
done
wait_200 "$gate/readyz" || { echo "overload-smoke: gateway never became ready"; cat "$TMP/gate.log"; exit 1; }
wait_200 "$noretry/readyz" || { echo "overload-smoke: no-retry gateway never became ready"; cat "$TMP/gate-noretry.log"; exit 1; }

# The fixed batch spans sources across the hash space so its sub-groups
# always cover more than one replica: a single dead shard can only
# degrade it, never fail it whole.
BODY='{"pairs":[[0,99],[9,42],[17,4],[25,61],[33,88],[41,5],[49,70],[57,12],[65,30],[73,96],[81,22],[89,55]]}'
# The hammer's batches are deliberately heavy (4000 pairs): individual
# estimates are microsecond-fast, so saturation needs requests that
# actually occupy a replica slot for measurable time.
BIG="$TMP/big.json"
{
    printf '{"pairs":['
    awk 'BEGIN { for (i = 0; i < 4000; i++) printf "%s[%d,%d]", (i ? "," : ""), (i * 7) % 100, (i * 13 + 3) % 100 }'
    printf ']}'
} >"$BIG"
GATE="$gate"
export BODY BIG GATE

# hammer <count> <outfile>: count requests at 24-way parallelism, every
# other one a heavy fan-out /batch, recording "status time_total" per
# line.
hammer() {
    seq 1 "$1" | xargs -P 24 -I_N sh -c '
        i=$1
        if [ $((i % 2)) -eq 0 ]; then
            curl -s -o /dev/null -w "%{http_code} %{time_total}\n" \
                -d @"$BIG" "$GATE/batch"
        else
            curl -s -o /dev/null -w "%{http_code} %{time_total}\n" \
                "$GATE/distance?s=$((i * 7 % 100))&t=$((i * 13 % 100))"
        fi' _ _N >>"$2" || true
}

hammer 150 "$TMP/phase_a.txt"            # phase A: full fleet, saturated
kill "$(eval echo "\$PID_$PC")" 2>/dev/null || true
hammer 150 "$TMP/phase_b.txt"            # phase B: one replica dead, same load
cat "$TMP/phase_a.txt" "$TMP/phase_b.txt" >"$TMP/all.txt"

# Invariant 1: only the sanctioned status set.
if bad=$(awk '$1 != 200 && $1 != 206 && $1 != 429 && $1 != 504 {print; exit 1}' "$TMP/all.txt"); then :; else
    echo "overload-smoke: forbidden status under overload: $bad"
    sort "$TMP/all.txt" | awk '{print $1}' | uniq -c
    cat "$TMP/gate.log"
    exit 1
fi

# Invariant 2: the drill saturated, and goodput survived the kill.
shed=$(awk '$1 == 429' "$TMP/all.txt" | wc -l)
good_b=$(awk '$1 == 200 || $1 == 206' "$TMP/phase_b.txt" | wc -l)
if [ "$shed" -lt 1 ]; then
    echo "overload-smoke: no 429s — the hammer never saturated the fleet"
    exit 1
fi
if [ "$good_b" -lt 1 ]; then
    echo "overload-smoke: zero goodput after the kill — survivors stopped serving"
    cat "$TMP/gate.log"
    exit 1
fi

# Invariant 3: partial-degradation merge check. The healthy-path answer
# (hammered gateway, retries on, dead shard ejected by now) is the
# reference; the no-retry gateway's 206 must null exactly the dead
# pairs and carry the reference values bit-identically everywhere else.
full=$(curl -s -d "$BODY" "$gate/batch")
code=$(curl -s -o "$TMP/partial.json" -w '%{http_code}' -d "$BODY" "$noretry/batch")
if [ "$code" != 206 ]; then
    echo "overload-smoke: dead-shard batch = $code, want 206 (body: $(cat "$TMP/partial.json"))"
    cat "$TMP/gate-noretry.log"
    exit 1
fi
grep -q '"partial":true' "$TMP/partial.json" || { echo "overload-smoke: 206 without partial flag"; cat "$TMP/partial.json"; exit 1; }
grep -q '"errors":\[{"index":' "$TMP/partial.json" || { echo "overload-smoke: 206 without per-pair error entries"; cat "$TMP/partial.json"; exit 1; }
full_d=$(printf '%s' "$full" | sed 's/.*"distances":\[\([^]]*\)\].*/\1/')
part_d=$(sed 's/.*"distances":\[\([^]]*\)\].*/\1/' "$TMP/partial.json")
awk -v a="$full_d" -v b="$part_d" 'BEGIN {
    n = split(a, A, ","); m = split(b, B, ",")
    if (n != m) { print "overload-smoke: partial merge wrong shape: " m " of " n " pairs"; exit 1 }
    nulls = 0
    for (i = 1; i <= n; i++) {
        if (B[i] == "null") { nulls++; continue }
        if (A[i] != B[i]) { print "overload-smoke: partial merge corrupted pair " i-1 ": " B[i] " want " A[i]; exit 1 }
    }
    if (nulls == 0) { print "overload-smoke: no pair was dropped — dead shard not exercised"; exit 1 }
    if (nulls == n) { print "overload-smoke: every pair dropped — nothing survived"; exit 1 }
}' || exit 1

offered=$(wc -l <"$TMP/all.txt")
good=$(awk '$1 == 200 || $1 == 206' "$TMP/all.txt" | wc -l)
partial=$(awk '$1 == 206' "$TMP/all.txt" | wc -l)
timeout=$(awk '$1 == 504' "$TMP/all.txt" | wc -l)
p99=$(awk '{print $2}' "$TMP/all.txt" | sort -n | awk '{v[NR]=$1} END {print v[int(NR*0.99) < 1 ? 1 : int(NR*0.99)]}')

if [ -n "$BENCH_OUT" ]; then
    printf '{\n  "experiment": "overload-smoke",\n  "dataset": "grid-10x10",\n  "replicas": 3,\n  "replica_max_inflight": 1,\n  "parallel_clients": 24,\n  "offered": %s,\n  "goodput": %s,\n  "shed_429": %s,\n  "partial_206": %s,\n  "timeout_504": %s,\n  "goodput_after_kill": %s,\n  "client_p99_seconds": %s\n}\n' \
        "$offered" "$good" "$shed" "$partial" "$timeout" "$good_b" "$p99" >"$BENCH_OUT"
    echo "overload-smoke: wrote $BENCH_OUT"
fi
echo "overload-smoke: $offered offered, $good served, $shed shed, p99 ${p99}s; partial 206 merge verified against the healthy fleet"
