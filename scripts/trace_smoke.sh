#!/bin/sh
# trace-smoke: end-to-end distributed tracing check through the real
# binaries.
#
# Start two traced rneserver replicas behind a traced rnegate (hedging
# armed), drive /distance and /batch traffic, and assert the span
# files stitch into whole traces: one gateway /batch trace must
# contain every backend-attempt span, and every attempt must have a
# matching replica-side handler span carrying the same trace ID
# (traceparent propagation across the wire). Then re-run the same
# traffic through an untraced fleet, measure the p99 delta, and emit
# the tail-latency attribution as BENCH_trace.json via
# rnereplay -traces.
set -eu

GO=${GO:-go}
PA=${TRACE_SMOKE_PORT_A:-18472}
PB=${TRACE_SMOKE_PORT_B:-18473}
PG=${TRACE_SMOKE_PORT_G:-18474}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -o "$TMP/g.txt"
$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver
$GO build -o "$TMP/rnegate" ./cmd/rnegate
$GO build -o "$TMP/rnereplay" ./cmd/rnereplay

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 1 -report "" \
    -o "$TMP/m.rne" >/dev/null 2>&1

gate="http://127.0.0.1:$PG"
wait_200() {
    i=0
    until curl -sf "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -gt 100 ] && return 1
        sleep 0.1
    done
}

# start_fleet <trace: yes|no>: two replicas + gateway, recording PIDs
# in FLEET_PIDS.
start_fleet() {
    srv_flags=""
    gw_flags=""
    if [ "$1" = yes ]; then
        srv_flags="-trace"
        gw_flags="-trace -trace-out $TMP/gw.spans.jsonl"
    fi
    # shellcheck disable=SC2086
    "$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$PA" \
        $srv_flags -trace-out "$TMP/sa.spans.jsonl" >"$TMP/a.log" 2>&1 &
    A_PID=$!
    # shellcheck disable=SC2086
    "$TMP/rneserver" -model "$TMP/m.rne" -addr "127.0.0.1:$PB" \
        $srv_flags -trace-out "$TMP/sb.spans.jsonl" >"$TMP/b.log" 2>&1 &
    B_PID=$!
    # shellcheck disable=SC2086
    "$TMP/rnegate" -addr "127.0.0.1:$PG" \
        -backends "http://127.0.0.1:$PA,http://127.0.0.1:$PB" \
        -health-interval 100ms -retry-budget 1 \
        -hedge -hedge-min-delay 1us -hedge-max-delay 20us \
        $gw_flags >"$TMP/gate.log" 2>&1 &
    G_PID=$!
    FLEET_PIDS="$A_PID $B_PID $G_PID"
    PIDS="$PIDS $FLEET_PIDS"
    wait_200 "http://127.0.0.1:$PA/healthz" || { echo "trace-smoke: backend A never came up"; cat "$TMP/a.log"; exit 1; }
    wait_200 "http://127.0.0.1:$PB/healthz" || { echo "trace-smoke: backend B never came up"; cat "$TMP/b.log"; exit 1; }
    wait_200 "$gate/readyz" || { echo "trace-smoke: gateway never became ready"; cat "$TMP/gate.log"; exit 1; }
}

# stop_fleet: SIGTERM so every process drains and flushes its span
# file on the graceful-shutdown path.
stop_fleet() {
    for p in $FLEET_PIDS; do kill -TERM "$p" 2>/dev/null || true; done
    for p in $FLEET_PIDS; do wait "$p" 2>/dev/null || true; done
}

# drive <timings-file>: mixed traffic; /distance timings recorded for
# the p99 comparison.
drive() {
    : >"$1"
    body='{"pairs":[[0,99],[17,42],[3,61],[88,5],[25,60],[7,70]]}'
    i=0
    while [ $i -lt 10 ]; do
        curl -sf -d "$body" "$gate/batch" >/dev/null || { echo "trace-smoke: /batch failed"; cat "$TMP/gate.log"; exit 1; }
        i=$((i + 1))
    done
    i=0
    while [ $i -lt 60 ]; do
        curl -sf -o /dev/null -w '%{time_total}\n' \
            "$gate/distance?s=$((i % 97))&t=$(((i * 7 + 3) % 97))" >>"$1" \
            || { echo "trace-smoke: /distance failed"; cat "$TMP/gate.log"; exit 1; }
        i=$((i + 1))
    done
}

# p99_us <timings-file>: exact order statistic, seconds -> microseconds.
p99_us() {
    sort -n "$1" | awk '{a[NR]=$1} END {
        i = int(NR * 0.99); if (i < 1) i = 1; if (NR * 0.99 > i) i++;
        printf "%.0f", a[i] * 1000000 }'
}

# --- pass 1: traced fleet ------------------------------------------
start_fleet yes
drive "$TMP/on.times"
stop_fleet
P99_ON=$(p99_us "$TMP/on.times")

for f in gw.spans.jsonl sa.spans.jsonl sb.spans.jsonl; do
    [ -s "$TMP/$f" ] || { echo "trace-smoke: $f is empty or missing"; exit 1; }
done

# One gateway /batch trace must hold every backend-attempt span, and
# each attempt a replica handler span with the same trace ID.
TID=$(grep '"name":"POST /batch"' "$TMP/gw.spans.jsonl" | head -1 \
    | sed 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/')
[ -n "$TID" ] || { echo "trace-smoke: no gateway /batch root span"; exit 1; }
ATTEMPTS=$(grep "\"trace_id\":\"$TID\"" "$TMP/gw.spans.jsonl" \
    | grep -c '"name":"backend /batch"' || true)
[ "$ATTEMPTS" -ge 1 ] || { echo "trace-smoke: /batch trace $TID has no attempt spans"; exit 1; }
REPLICA=$(cat "$TMP/sa.spans.jsonl" "$TMP/sb.spans.jsonl" \
    | grep "\"trace_id\":\"$TID\"" | grep -c '"name":"POST /batch"' || true)
if [ "$REPLICA" -ne "$ATTEMPTS" ]; then
    echo "trace-smoke: trace $TID has $ATTEMPTS gateway attempts but $REPLICA replica handler spans"
    exit 1
fi

# Hedged /distance traffic must leave hedge-attempt spans behind.
grep -q '"kind":"hedge"' "$TMP/gw.spans.jsonl" \
    || { echo "trace-smoke: no hedge attempt span recorded"; exit 1; }
# Replica-side phase spans must be present for attribution.
grep -q '"name":"kernel"' "$TMP/sa.spans.jsonl" "$TMP/sb.spans.jsonl" \
    || { echo "trace-smoke: no kernel spans on the replicas"; exit 1; }

# --- pass 2: identical traffic, tracing off ------------------------
# Keep the pass-1 span files for the report and verify the untraced
# fleet creates none of its own.
for f in gw sa sb; do mv "$TMP/$f.spans.jsonl" "$TMP/$f.keep.jsonl"; done
start_fleet no
drive "$TMP/off.times"
stop_fleet
P99_OFF=$(p99_us "$TMP/off.times")
for f in gw sa sb; do
    [ ! -s "$TMP/$f.spans.jsonl" ] || { echo "trace-smoke: untraced fleet wrote $f spans"; exit 1; }
done

# --- attribution report --------------------------------------------
"$TMP/rnereplay" -traces "$TMP/gw.keep.jsonl,$TMP/sa.keep.jsonl,$TMP/sb.keep.jsonl" \
    -p99-on "$P99_ON" -p99-off "$P99_OFF" -out BENCH_trace.json
grep -q '"phases"' BENCH_trace.json || { echo "trace-smoke: BENCH_trace.json has no phase breakdown"; exit 1; }
grep -q '"delta_pct"' BENCH_trace.json || { echo "trace-smoke: overhead delta missing from report"; exit 1; }

echo "trace-smoke: one /batch trace carried $ATTEMPTS attempt + $REPLICA replica spans; p99 on ${P99_ON}us vs off ${P99_OFF}us"
