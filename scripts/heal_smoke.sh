#!/bin/sh
# heal-smoke: chaos end-to-end check of the autoheal loop through the
# real binaries.
#
# Publish v1 to a fresh registry and serve it with rneserver -autoheal
# watching the live graph file. Mid-serve, atomically replace the graph
# with a perturbed regime variant (genroad -regime) while a request
# hammer runs. The first retrain attempt is killed by an armed
# checkpoint-save failpoint (-faults); the controller must roll back,
# cool down, retrain again, publish v2 and hot-swap it — converging
# back under the error budget with zero failed requests throughout.
#
# HEAL_SMOKE_PRESET selects a named preset (e.g. bj-mini) instead of
# the fast default grid; HEAL_BENCH_OUT writes a BENCH_heal.json with
# time-to-detect / time-to-recover / max drift score.
set -eu

GO=${GO:-go}
PORT=${HEAL_SMOKE_PORT:-18372}
PRESET=${HEAL_SMOKE_PRESET:-}
BENCH_OUT=${HEAL_BENCH_OUT:-}
BUDGET=2
TMP=$(mktemp -d)
SRV_PID=""
HAMMER_PID=""
cleanup() {
    [ -n "$HAMMER_PID" ] && kill "$HAMMER_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

if [ -n "$PRESET" ]; then
    DATASET="$PRESET"
    $GO run ./cmd/genroad -preset "$PRESET" -o "$TMP/g.txt" 2>/dev/null
    $GO run ./cmd/genroad -preset "$PRESET" -regime rush-am -regime-seed 9 -o "$TMP/g2.txt" 2>/dev/null
else
    DATASET="grid-10x10"
    $GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -o "$TMP/g.txt" 2>/dev/null
    $GO run ./cmd/genroad -rows 10 -cols 10 -seed 7 -regime rush-am -regime-seed 9 -o "$TMP/g2.txt" 2>/dev/null
fi
$GO build -o "$TMP/rnebuild" ./cmd/rnebuild
$GO build -o "$TMP/rneserver" ./cmd/rneserver

"$TMP/rnebuild" -graph "$TMP/g.txt" -dim 8 -epochs 2 -seed 1 -report "" \
    -o "$TMP/m1.rne" -registry "$TMP/reg" -publish demo >/dev/null 2>&1

"$TMP/rneserver" -registry "$TMP/reg" -name demo -addr "127.0.0.1:$PORT" \
    -autoheal -heal-graph "$TMP/g.txt" \
    -heal-interval 100ms -heal-probes 16 -heal-budget "$BUDGET" -heal-dwell 2 \
    -heal-cooldown 500ms -heal-warmup 24 -heal-epochs 2 -heal-rounds 2 \
    -faults core/checkpoint-save \
    >"$TMP/server.log" 2>&1 &
SRV_PID=$!

base="http://127.0.0.1:$PORT"
await() { # await <what> <tries> <cmd...>
    what=$1; tries=$2; shift 2
    i=0
    until "$@" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt "$tries" ]; then
            echo "heal-smoke: timed out waiting for $what"
            tail -40 "$TMP/server.log" || true
            exit 1
        fi
        sleep 0.1
    done
}
statz_has() { curl -sf "$base/statz" | grep -q "$1"; }
metric() { curl -sf "$base/metrics" | awk -v m="$1" '$1 == m {print $2}'; }

await "server startup" 100 curl -sf "$base/healthz"
if ! curl -sf "$base/healthz" | grep -q '"version":"v1"'; then
    echo "heal-smoke: expected registry v1 to be serving"
    exit 1
fi
# The probe monitor must freeze its healthy baseline before the shift.
await "probe baseline warmup" 200 statz_has '"warm":true'

# Hammer /distance for the whole storm; every failed request leaves a
# line in $TMP/failures.
(
    while :; do
        curl -sf "$base/distance?s=3&t=77" >/dev/null 2>&1 || echo fail >>"$TMP/failures"
    done
) &
HAMMER_PID=$!

# Regime shift: atomically swap the live graph for its rush-hour
# variant. Estimates now come from a model trained on the old weights.
mv "$TMP/g2.txt" "$TMP/g.txt"
T0=$(date +%s.%N)

# Phase 1: drift detected (controller transitions to triggered) and
# the injected checkpoint fault kills the first retrain attempt.
T_DETECT=""
T_RECOVER=""
MAX_SCORE=0
i=0
while :; do
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
        echo "heal-smoke: controller never converged"
        tail -40 "$TMP/server.log" || true
        exit 1
    fi
    now=$(date +%s.%N)
    score=$(metric rne_autoheal_score || true)
    [ -n "$score" ] && MAX_SCORE=$(awk -v a="$MAX_SCORE" -v b="$score" 'BEGIN{print (b>a)?b:a}')
    if [ -z "$T_DETECT" ]; then
        trig=$(metric 'rne_autoheal_transitions_total{state="triggered"}' || true)
        if [ -n "$trig" ] && [ "$trig" -ge 1 ] 2>/dev/null; then
            T_DETECT=$(awk -v t="$now" -v t0="$T0" 'BEGIN{print t - t0}')
        fi
    fi
    heals=$(metric rne_autoheal_heals_total || true)
    if [ -n "$heals" ] && [ "$heals" -ge 1 ] 2>/dev/null; then
        T_RECOVER=$(awk -v t="$now" -v t0="$T0" 'BEGIN{print t - t0}')
        break
    fi
    sleep 0.1
done

fails=$(metric rne_autoheal_heal_failures_total)
if [ -z "$fails" ] || [ "$fails" -lt 1 ]; then
    echo "heal-smoke: injected checkpoint fault never failed a retrain (failures=$fails)"
    exit 1
fi
await "serving version flip to v2" 100 sh -c "curl -sf $base/healthz | grep -q '\"version\":\"v2\"'"

# Convergence: the rebuilt probe monitor re-warms against the healed
# model and scores back under the error budget.
await "post-heal re-warmup" 600 statz_has '"warm":true'
score=$(metric rne_autoheal_score)
if ! awk -v s="$score" -v b="$BUDGET" 'BEGIN{exit !(s < b)}'; then
    echo "heal-smoke: post-heal score $score not under budget $BUDGET"
    exit 1
fi

kill "$HAMMER_PID" 2>/dev/null || true
wait "$HAMMER_PID" 2>/dev/null || true
HAMMER_PID=""

if [ -s "$TMP/failures" ]; then
    echo "heal-smoke: $(wc -l <"$TMP/failures") requests failed during the chaos storm"
    exit 1
fi

if [ -n "$BENCH_OUT" ]; then
    cat >"$BENCH_OUT" <<EOF
{
  "experiment": "heal-smoke",
  "dataset": "$DATASET",
  "regime": "rush-am",
  "error_budget": $BUDGET,
  "time_to_detect_seconds": ${T_DETECT:-null},
  "time_to_recover_seconds": $T_RECOVER,
  "max_drift_score": $MAX_SCORE,
  "heal_failures_injected": $fails,
  "requests_failed": 0
}
EOF
    echo "heal-smoke: wrote $BENCH_OUT"
fi
echo "heal-smoke: drift detected in ${T_DETECT:-?}s, healed v1 -> v2 in ${T_RECOVER}s (max score $MAX_SCORE), zero failed requests"
