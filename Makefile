# Pre-merge gate: `make ci` must pass before any change lands.
GO ?= go

.PHONY: ci build vet test race shuffle fuzz-smoke vulncheck bench bench-smoke replay-smoke swap-smoke gate-smoke heal-smoke overload-smoke trace-smoke load-smoke shard-smoke

ci: vet race shuffle fuzz-smoke vulncheck bench-smoke replay-smoke swap-smoke gate-smoke heal-smoke overload-smoke trace-smoke load-smoke shard-smoke ## full pre-merge gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Shuffled order flushes out tests that depend on package-level state
# left behind by earlier tests (e.g. a failpoint someone forgot to Reset).
shuffle:
	$(GO) test -shuffle=on ./...

# Ten seconds of coverage-guided fuzzing over the DIMACS parser — a
# smoke pass catching regressions in input hardening, not a deep campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseDIMACS -fuzztime=10s ./internal/graph

# Known-vulnerability scan; skips gracefully where govulncheck or the
# vulndb is unavailable (offline CI, hermetic builders).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || exit 1; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; \
	fi

# Model-lifecycle smoke through the real binaries: publish v1 to a
# registry, serve it, publish v2, SIGHUP, and assert the serving
# version flips with zero failed requests.
swap-smoke:
	@GO="$(GO)" sh scripts/swap_smoke.sh

# Chaos self-healing smoke through the real binaries: perturb the
# live graph mid-serve, kill the first retrain with an armed
# checkpoint failpoint, and assert the controller still retrains,
# swaps to v2 and converges under budget with zero failed requests.
heal-smoke:
	@GO="$(GO)" sh scripts/heal_smoke.sh

# Scale-out smoke: rnegate fanning /batch across two rneserver
# replicas keeps serving (with the ejection counted) after one
# replica is killed.
gate-smoke:
	@GO="$(GO)" sh scripts/gate_smoke.sh

# Overload drill smoke: three capacity-starved replicas behind rnegate
# hammered past saturation with one killed mid-run; every answer must
# be 200/206/429/504, shedding must actually fire, goodput must
# survive the kill, and a dead-shard /batch must degrade to a partial
# 206 whose merge is verified against the healthy fleet.
overload-smoke:
	@GO="$(GO)" sh scripts/overload_smoke.sh

# Distributed-tracing smoke through the real binaries: a traced
# gateway + two traced replicas serve hedged /distance and sharded
# /batch traffic; asserts one gateway trace carries every backend
# attempt plus matching replica handler spans, then re-runs untraced
# and emits the tail-latency attribution (with the on/off p99 delta)
# as BENCH_trace.json via rnereplay -traces.
trace-smoke:
	@GO="$(GO)" sh scripts/trace_smoke.sh

# Load-harness smoke through the real binaries: a short closed+open
# ramp against one replica (with pprof capture from -debug-addr), then
# against rnegate over two replicas, appended into one BENCH_load.json;
# asserts the client/server metrics join is non-empty in both runs.
load-smoke:
	@GO="$(GO)" sh scripts/load_smoke.sh

# Geo-sharded serving smoke: a bj-mini model cut into two level-1
# region shards behind the region-routing gateway; asserts intra-shard
# answers match the full replica bit-for-bit, cross-shard answers stay
# inside certified guard bounds, shard replicas hold strictly fewer
# embedding bytes than the full one, and killing one shard degrades
# only its region. Emits BENCH_shard.json (full vs sharded).
shard-smoke:
	@GO="$(GO)" sh scripts/shard_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Telemetry smoke benchmark: quick traced build + timed queries through
# the telemetry histograms; emits BENCH_telemetry.json with p50/p95/p99.
bench-smoke:
	$(GO) run ./cmd/rnebench -exp telemetry-smoke -quick

# Record → replay → diff smoke: generate a grid, score a workload
# against the exact oracle while recording it as a query log, then
# replay the log with the same deterministic training and assert the
# diff verdict is "ok" (rnereplay exits 3 on a regression verdict).
replay-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/genroad -rows 12 -cols 12 -seed 7 -o $$tmp/g.txt && \
	$(GO) run ./cmd/rnereplay -graph $$tmp/g.txt -gen 300 -quick -landmarks 4 \
		-qlog-out $$tmp/q.jsonl -out $$tmp/base.json >/dev/null && \
	$(GO) run ./cmd/rnereplay -graph $$tmp/g.txt -log $$tmp/q.jsonl -quick -landmarks 4 \
		-out $$tmp/replay.json -baseline $$tmp/base.json >$$tmp/replay.txt && \
	grep "diff vs" $$tmp/replay.txt && \
	echo "replay-smoke: verdict ok"
