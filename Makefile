# Pre-merge gate: `make ci` must pass before any change lands.
GO ?= go

.PHONY: ci build vet test race bench

ci: vet race ## full pre-merge gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
