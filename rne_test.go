package rne

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sssp"
)

func buildTestModel(t *testing.T) (*Graph, *Model) {
	t.Helper()
	g, err := Preset("bj-mini")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(3)
	opt.Dim = 32
	opt.Epochs = 4
	opt.VertexSampleRatio = 25
	opt.FineTuneRounds = 2
	opt.HierSampleCap = 10000
	opt.ValidationPairs = 300
	m, stats, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Validation.MeanRel > 0.10 {
		t.Fatalf("facade build validation %.2f%% too high", stats.Validation.MeanRel*100)
	}
	return g, m
}

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full facade build in -short mode")
	}
	g, m := buildTestModel(t)

	// Estimates track exact distances.
	ws := sssp.NewWorkspace(g)
	var sumRel float64
	const trials = 100
	for i := 0; i < trials; i++ {
		s := int32((i * 131) % g.NumVertices())
		u := int32((i*197 + 53) % g.NumVertices())
		exact := ws.Distance(s, u)
		if exact <= 0 {
			continue
		}
		sumRel += math.Abs(m.Estimate(s, u)-exact) / exact
	}
	if mean := sumRel / trials; mean > 0.10 {
		t.Fatalf("facade estimates mean rel err %.3f", mean)
	}

	// Spatial index over a POI subset.
	var pois []int32
	for v := int32(0); v < int32(g.NumVertices()); v += 7 {
		pois = append(pois, v)
	}
	idx, err := NewSpatialIndex(m, pois)
	if err != nil {
		t.Fatal(err)
	}
	knn := idx.KNN(0, 5)
	if len(knn) != 5 {
		t.Fatalf("KNN returned %d results", len(knn))
	}
	rg := idx.Range(0, m.Scale()*0.2)
	for _, v := range rg {
		if m.Estimate(0, v) > m.Scale()*0.2 {
			t.Fatalf("range result %d outside radius", v)
		}
	}

	// Model persistence through the facade.
	dir := t.TempDir()
	path := filepath.Join(dir, "m.rne")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Estimate(1, 2) != m.Estimate(1, 2) {
		t.Fatal("loaded model disagrees")
	}
}

func TestGraphIOFacade(t *testing.T) {
	g, err := Preset("bj-mini")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("graph IO round trip changed sizes")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	g3, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != g.NumVertices() {
		t.Fatal("file round trip changed graph")
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("atlantis"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewGraphBuilder(3, 2)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	b.AddVertex(2, 0)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("builder facade produced %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestFacadeExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("full build in -short mode")
	}
	g, m := buildTestModel(t)

	// Compact model through the facade alias.
	c, err := m.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if c.IndexBytes() >= m.IndexBytes() {
		t.Fatal("compact model not smaller")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.rne32")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCompactModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Estimate(1, 2) != c.Estimate(1, 2) {
		t.Fatal("compact round trip changed estimates")
	}

	// Bounded estimator: certified intervals contain the exact distance.
	be, err := NewBoundedEstimator(g, m, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	for i := 0; i < 50; i++ {
		s := int32((i * 61) % g.NumVertices())
		u := int32((i*97 + 13) % g.NumVertices())
		est, lo, hi := be.EstimateWithBounds(s, u)
		exact := ws.Distance(s, u)
		if est < lo || est > hi || exact < lo-1e-9 || exact > hi+1e-9 {
			t.Fatalf("(%d,%d): est %v bounds [%v,%v] exact %v", s, u, est, lo, hi, exact)
		}
	}

	// Batch estimation through the facade.
	ss := []int32{0, 1, 2}
	ts := []int32{3, 4, 5}
	out := make([]float64, 3)
	if err := m.EstimateBatch(ss, ts, out, 2); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != m.Estimate(ss[i], ts[i]) {
			t.Fatal("batch disagrees with single estimates")
		}
	}
}

func TestReadDIMACSFacade(t *testing.T) {
	dir := t.TempDir()
	gr := filepath.Join(dir, "g.gr")
	co := filepath.Join(dir, "g.co")
	if err := os.WriteFile(gr, []byte("p sp 2 2\na 1 2 7\na 2 1 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(co, []byte("p aux sp co 2\nv 1 0 0\nv 2 3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadDIMACS(gr, co)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("DIMACS facade parsed %d/%d", g.NumVertices(), g.NumEdges())
	}
}
