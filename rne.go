// Package rne is the public API of the Road Network Embedding (RNE)
// library, a reproduction of "A Learning-based Method for Computing
// Shortest Path Distances on Road Networks" (ICDE 2021).
//
// RNE embeds every vertex of a road network into a low-dimensional
// space so that the L1 distance between two embedding vectors
// approximates their shortest-path distance. Queries are two row reads
// and one L1 kernel — tens of nanoseconds — with sub-percent mean
// relative error after hierarchical training and active fine-tuning.
//
// Typical use:
//
//	g, _ := rne.LoadGraph("roads.txt")           // or rne.Preset("bj-mini")
//	model, stats, _ := rne.Build(g, rne.DefaultOptions(42))
//	d := model.Estimate(src, dst)                // approximate distance
//	idx, _ := rne.NewSpatialIndex(model, taxis)  // Section VI tree index
//	nearest := idx.KNN(rider, 5)
package rne

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/registry"
	"repro/internal/shard"
)

// Graph is a weighted road network: vertices with planar coordinates,
// undirected positively-weighted edges in CSR form.
type Graph = graph.Graph

// GraphBuilder accumulates vertices and edges into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder with capacity hints for n vertices
// and m undirected edges.
func NewGraphBuilder(n, m int) *GraphBuilder { return graph.NewBuilder(n, m) }

// LoadGraph reads a graph from the text edge-list format
// ("p <n> <m>" header, "v <id> <x> <y>" and "e <u> <v> <w>" records).
func LoadGraph(path string) (*Graph, error) { return graph.ReadFile(path) }

// SaveGraph writes a graph in the text edge-list format.
func SaveGraph(path string, g *Graph) error { return graph.WriteFile(path, g) }

// ReadGraph parses a graph from r in the text edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes g to w in the text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// Preset generates one of the built-in synthetic road networks
// ("bj-mini", "fla-mini", "usw-mini") standing in for the paper's
// datasets.
func Preset(name string) (*Graph, error) {
	p, err := gen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	return p.Build()
}

// Options configures a model build; see core.Options for every knob.
type Options = core.Options

// VertexStrategy selects the phase-② sample source.
type VertexStrategy = core.VertexStrategy

// Vertex-phase strategies.
const (
	VertexLandmark = core.VertexLandmark
	VertexRandom   = core.VertexRandom
)

// DefaultOptions returns the paper-style defaults (d=64, L1 metric,
// hierarchical training, landmark samples, active fine-tuning).
func DefaultOptions(seed int64) Options { return core.DefaultOptions(seed) }

// Model is a trained road-network embedding answering distance
// estimates in nanoseconds.
type Model = core.Model

// BuildStats reports build time per phase, samples consumed and final
// validation error.
type BuildStats = core.BuildStats

// Build trains an RNE over g: partition hierarchy, hierarchical
// embedding, landmark-based vertex embedding, active fine-tuning
// (Algorithm 1 of the paper).
func Build(g *Graph, opt Options) (*Model, BuildStats, error) { return core.Build(g, opt) }

// FineTune incrementally retrains warm against g: the warm model's
// embedding seeds a short vertex-phase + fine-tune schedule over fresh
// samples from g, recovering accuracy after an edge-weight regime
// shift at a fraction of a full Build. The graph must have the same
// vertex count as warm; the result is a naive (non-hierarchical)
// model.
func FineTune(g *Graph, warm *Model, opt Options) (*Model, BuildStats, error) {
	return core.FineTune(g, warm, opt)
}

// Trainer exposes the individual training phases for experimentation.
type Trainer = core.Trainer

// NewTrainer prepares a phase-by-phase trainer.
func NewTrainer(g *Graph, opt Options) (*Trainer, error) { return core.NewTrainer(g, opt) }

// LoadModel reads a model saved with Model.SaveFile.
func LoadModel(path string) (*Model, error) { return core.LoadFile(path) }

// SpatialIndex is the Section VI tree index over an object set
// (e.g. taxis, POIs) supporting embedding-space range and kNN queries.
type SpatialIndex = index.Tree

// SampleTargets draws a deterministic random set of ~frac*|V| distinct
// vertices to index as spatial targets (the taxis/POIs of the paper's
// Section VI workloads). frac must be non-negative; the sample size is
// clamped to [1, |V|], so frac >= 1 simply indexes every vertex.
func SampleTargets(g *Graph, frac float64, seed int64) ([]int32, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("rne: sampling targets over an empty graph")
	}
	if frac < 0 || math.IsNaN(frac) {
		return nil, fmt.Errorf("rne: target fraction must be non-negative, got %v", frac)
	}
	n := g.NumVertices()
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	targets := make([]int32, k)
	for i := 0; i < k; i++ {
		targets[i] = int32(perm[i])
	}
	return targets, nil
}

// NewSpatialIndex builds the tree index over the given target vertices.
// The model must come fresh from Build with hierarchical training
// enabled (loaded models do not retain the partition tree); persist the
// index with its SaveFile method and reload it with LoadSpatialIndex.
func NewSpatialIndex(m *Model, targets []int32) (*SpatialIndex, error) {
	return index.Build(m, targets)
}

// LoadSpatialIndex reads a spatial index saved with SpatialIndex.Save
// and attaches it to the (separately loaded) model it was built with.
func LoadSpatialIndex(path string, m *Model) (*SpatialIndex, error) {
	return index.LoadFile(path, m)
}

// ReadDIMACS parses a road network from the 9th DIMACS Implementation
// Challenge .gr/.co format (the format the paper's FLA and US-W
// datasets ship in).
func ReadDIMACS(grPath, coPath string) (*Graph, error) {
	return graph.ReadDIMACSFiles(grPath, coPath)
}

// CompactModel is the float32 deployment variant of Model: half the
// index size with negligible quantization error.
type CompactModel = core.CompactModel

// LoadCompactModel reads a compact model saved with CompactModel.Save.
func LoadCompactModel(path string) (*CompactModel, error) { return core.LoadCompactFile(path) }

// BoundedEstimator clamps RNE estimates into ALT landmark bounds,
// trading RNE's nanosecond latency for microsecond queries with
// certified error intervals and much lighter tails.
type BoundedEstimator = hybrid.Estimator

// NewBoundedEstimator combines a model trained over g with a fresh
// landmark index of the given size.
func NewBoundedEstimator(g *Graph, m *Model, landmarks int, seed int64) (*BoundedEstimator, error) {
	lt, err := alt.Build(g, landmarks, seed)
	if err != nil {
		return nil, err
	}
	return hybrid.New(m, lt)
}

// ALTIndex is a landmark distance-label index: O(|U|) certified lower
// and upper bounds on any shortest-path distance.
type ALTIndex = alt.Index

// BuildALTIndex selects landmarks by farthest selection over g and
// precomputes their distance labels. Persist it with its SaveFile
// method and reload it with LoadALTIndex.
func BuildALTIndex(g *Graph, landmarks int, seed int64) (*ALTIndex, error) {
	return alt.Build(g, landmarks, seed)
}

// LoadALTIndex reads an index saved with ALTIndex.SaveFile. The loaded
// index answers bound and estimate queries without the graph (exact
// ALT A* search needs an in-process build).
func LoadALTIndex(path string) (*ALTIndex, error) { return alt.LoadFile(path) }

// NewBoundedEstimatorFromIndex combines a model with a prebuilt (e.g.
// loaded) landmark index over the same graph.
func NewBoundedEstimatorFromIndex(m *Model, lt *ALTIndex) (*BoundedEstimator, error) {
	return hybrid.New(m, lt)
}

// NewCompactBoundedEstimator combines a float32 compact model with a
// prebuilt landmark index, so guard mode also runs on half-memory
// compact replicas.
func NewCompactBoundedEstimator(m *CompactModel, lt *ALTIndex) (*BoundedEstimator, error) {
	return hybrid.New(m, lt)
}

// ModelRegistry is a versioned on-disk model store: rnebuild publishes
// immutable versions (model plus optional compact sibling, ALT guard
// and spatial index), rneserver resolves and hot-swaps the latest good
// one. Corrupt versions are quarantined with automatic fallback; see
// internal/registry for the layout and retention semantics.
type ModelRegistry = registry.Store

// RegistryArtifacts selects what one published version carries.
type RegistryArtifacts = registry.Artifacts

// RegistrySet is one fully-loaded registry version — the unit a
// server hot-swaps.
type RegistrySet = registry.Set

// RegistryLoadOpts tunes registry version loading (e.g. the float32
// compact sibling instead of the full model).
type RegistryLoadOpts = registry.LoadOpts

// OpenModelRegistry opens (creating if absent) a registry rooted at
// the given directory.
func OpenModelRegistry(root string) (*ModelRegistry, error) { return registry.Open(root) }

// Explanation decomposes one estimate into per-hierarchy-level
// contributions (Model.ExplainEstimate): the provenance view of a
// distance answer. Contributions telescope, summing exactly to the
// estimate.
type Explanation = core.Explanation

// LevelContribution is one hierarchy level's share of an explained
// estimate.
type LevelContribution = core.LevelContribution

// GuardResult is one guarded estimate: clamped value, raw model
// estimate, certified interval, and clamp direction.
type GuardResult = hybrid.GuardResult

// GuardProvenance extends GuardResult with the landmarks that produced
// each side of the certified interval (BoundedEstimator.Explain).
type GuardProvenance = hybrid.Provenance

// IndexQueryStats counts the work one spatial-index traversal did
// (SpatialIndex.KNNStats / RangeStats): how much of the tree the
// triangle-inequality pruning skipped.
type IndexQueryStats = index.QueryStats

// ShardConfig controls how CutShards splits a model: the hierarchy
// cut level and the shard count K.
type ShardConfig = shard.Config

// ShardSplit is the output of one CutShards: the vertex→shard routing
// map, K shard models, and (when cut with a guard) their
// region-restricted ALT indexes. Publish it via RegistryArtifacts.
type ShardSplit = shard.Split

// ShardModel is one region shard of a trained model: exact embedding
// rows for its region, shared upper-level embeddings for cross-shard
// estimates, and the owner table for redirect hints.
type ShardModel = shard.Model

// ShardMap is the compact vertex→shard routing table the gateway
// loads to route requests by region.
type ShardMap = shard.Map

// CutShards splits a freshly built hierarchical model into region
// shards at cfg.CutLevel. lt, when non-nil, is the full ALT guard to
// restrict per region (a region holding no landmarks keeps the full
// set — valid bounds, just not memory-reduced). Loaded models do not
// retain the partition tree, so cut in the same process as Build.
func CutShards(m *Model, lt *ALTIndex, cfg ShardConfig) (*ShardSplit, error) {
	return shard.Cut(m, lt, cfg)
}

// LoadShardMap reads a vertex→shard routing map published inside a
// sharded registry version (models/<name>/<vN>/shards/shardmap.rnemap),
// for rnegate -shard-map region routing.
func LoadShardMap(path string) (*ShardMap, error) { return shard.LoadMapFile(path) }

// NewShardBoundedEstimator combines a region shard with a (typically
// region-restricted) landmark index, so shard replicas serve guard
// mode too: cross-shard upper-level estimates are clamped into
// certified bounds.
func NewShardBoundedEstimator(m *ShardModel, lt *ALTIndex) (*BoundedEstimator, error) {
	return hybrid.New(m, lt)
}
