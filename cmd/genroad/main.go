// Command genroad emits a synthetic road network in the text edge-list
// format, either from a named preset or from explicit grid dimensions.
//
// -regime applies a deterministic weight perturbation on top of the
// base network — time-of-day multipliers on arterial edges plus
// localized incident spikes — producing a traffic-regime variant with
// identical topology. This is the workload generator for drift and
// autoheal experiments: emit the base graph, serve a model trained on
// it, then emit a regime variant over the same seed to shift the edge
// weights under the serving model.
//
// Usage:
//
//	genroad -preset bj-mini -o bj.txt
//	genroad -preset bj-mini -regime rush-am -regime-seed 9 -o bj-rush.txt
//	genroad -rows 120 -cols 80 -seed 7 -o custom.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	preset := flag.String("preset", "", "preset name (bj-mini, fla-mini, usw-mini)")
	rows := flag.Int("rows", 0, "grid rows (with -cols, instead of -preset)")
	cols := flag.Int("cols", 0, "grid cols")
	seed := flag.Int64("seed", 1, "generator seed")
	regime := flag.String("regime", "", "perturb edge weights with a named traffic regime: "+strings.Join(gen.RegimeNames(), ", "))
	regimeSeed := flag.Int64("regime-seed", 1, "seed for regime jitter and incident placement")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *preset != "":
		var p gen.Preset
		p, err = gen.PresetByName(*preset)
		if err == nil {
			g, err = p.Build()
		}
	case *rows > 0 && *cols > 0:
		g, err = gen.Grid(*rows, *cols, gen.DefaultConfig(*seed))
	default:
		err = fmt.Errorf("need -preset or -rows/-cols")
	}
	if err == nil && *regime != "" {
		if cfg, ok := gen.RegimeByName(*regime, *regimeSeed); ok {
			g, err = gen.Perturb(g, cfg)
		} else {
			err = fmt.Errorf("unknown regime %q (have %s)", *regime, strings.Join(gen.RegimeNames(), ", "))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genroad:", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genroad:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "genroad:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "genroad: wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
}
