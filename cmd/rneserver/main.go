// Command rneserver serves RNE distance queries over HTTP.
//
// With -graph (or -preset) it trains a model on startup and serves the
// full API including /knn and /range over the given target vertices;
// with -model it loads a pre-trained model and serves /distance and
// /batch only (the partition tree is not persisted).
//
// Usage:
//
//	rneserver -preset bj-mini -addr :8080
//	rneserver -model bj.rne -addr :8080
//	curl 'localhost:8080/distance?s=17&t=4242'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	rne "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "pre-trained model (with -index, full API; else distance/batch only)")
	indexPath := flag.String("index", "", "spatial index saved by rnebuild -index-out (requires -model)")
	graphPath := flag.String("graph", "", "graph file: train on startup, full API")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed as spatial targets")
	seed := flag.Int64("seed", 42, "training seed")
	flag.Parse()

	var model *rne.Model
	var idx *rne.SpatialIndex
	switch {
	case *modelPath != "":
		var err error
		model, err = rne.LoadModel(*modelPath)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("loaded model: %d vertices, d=%d", model.NumVertices(), model.Dim())
		if *indexPath != "" {
			idx, err = rne.LoadSpatialIndex(*indexPath, model)
			if err != nil {
				log.Fatal("rneserver: ", err)
			}
			log.Printf("loaded spatial index over %d targets", idx.Size())
		}
	case *graphPath != "" || *preset != "":
		var g *rne.Graph
		var err error
		if *graphPath != "" {
			g, err = rne.LoadGraph(*graphPath)
		} else {
			g, err = rne.Preset(*preset)
		}
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("training over %d vertices...", g.NumVertices())
		start := time.Now()
		var stats rne.BuildStats
		model, stats, err = rne.Build(g, rne.DefaultOptions(*seed))
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("trained in %v, validation %s", time.Since(start).Round(time.Millisecond), stats.Validation)

		rng := rand.New(rand.NewSource(*seed))
		nTargets := int(*targetFrac * float64(g.NumVertices()))
		if nTargets < 1 {
			nTargets = 1
		}
		targets := make([]int32, 0, nTargets)
		seen := map[int32]bool{}
		for len(targets) < nTargets {
			v := int32(rng.Intn(g.NumVertices()))
			if !seen[v] {
				seen[v] = true
				targets = append(targets, v)
			}
		}
		idx, err = rne.NewSpatialIndex(model, targets)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("spatial index over %d targets", idx.Size())
	default:
		log.Fatal("rneserver: need -model, -graph or -preset")
	}

	srv, err := server.New(model, idx)
	if err != nil {
		log.Fatal("rneserver: ", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("rneserver listening on %s\n", *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
