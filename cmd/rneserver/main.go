// Command rneserver serves RNE distance queries over HTTP.
//
// With -graph (or -preset) it trains a model on startup and serves the
// full API including /knn and /range over the given target vertices;
// with -model it loads a pre-trained model and serves /distance and
// /batch only (the partition tree is not persisted) — /readyz then
// reports degraded mode unless -index supplies a saved spatial index.
//
// With -registry (a versioned model store written by rnebuild
// -publish) it serves the latest good version of -name and hot-swaps
// to a newer one — validated first, with automatic rollback — on
// SIGHUP or POST /admin/reload, without dropping a request. Corrupt
// versions are quarantined with fallback to the newest good one.
// -compact serves the float32 sibling at half the resident memory.
// -shard k serves geo-shard k of a sharded version (rnebuild
// -publish-shards): exact answers inside its region, upper-level
// estimates for cross-shard pairs, and 421 with an owner hint for
// sources it does not own — put rnegate -shard-map in front to route
// by region.
//
// With -alt-index (a file saved by rnebuild -alt-out) or, in training
// mode, -alt-landmarks, the server runs in guard mode: every /distance
// and /batch estimate is clamped into the certified landmark interval
// [lo, hi] containing the true distance, responses report the interval
// and whether clamping occurred, and clamp counters appear on /statz.
// Guard mode also feeds the online accuracy-drift monitor on /metrics.
//
// With -autoheal (registry mode only) the server closes the loop under
// dynamic edge weights: a background controller probes served estimates
// against exact distances computed over -heal-graph, and when drift
// stays past -heal-budget for -heal-dwell ticks it fine-tunes the
// serving model against the live graph, publishes the result and
// hot-swaps it through the validated reload path — rolling back and
// cooling down when the retrain or validation fails. Controller state
// appears on /statz and as rne_autoheal_* metrics. -faults arms
// fault-injection failpoints for chaos drills.
//
// The server runs hardened for production traffic: handler panics are
// converted to 500s, requests past -max-inflight are shed with 429 +
// Retry-After, every request carries a -request-timeout deadline and an
// X-Request-Id, request/latency counters are served on /statz (JSON)
// and /metrics (Prometheus text), and SIGINT/SIGTERM triggers a
// graceful shutdown that drains in-flight requests. -admit-p99-target
// replaces the static in-flight cap with the adaptive AIMD limiter:
// the cap shrinks when observed p99 blows the target and probes back
// up when it holds, /batch sheds before /distance, and health/admin
// endpoints are never shed. Requests arriving with an X-Rne-Budget-Ms
// deadline budget (set by rnegate) are abandoned with 504 once the
// budget is spent, so a replica never burns capacity on answers the
// gateway can no longer use. -debug-addr serves
// net/http/pprof profiles (plus a /metrics mirror) on a separate,
// operator-only listener. -qlog records a 1-in-N sample of served
// queries as JSONL (never blocking the serving path; overflow is
// dropped and counted on /metrics) for offline replay with rnereplay.
//
// Usage:
//
//	rneserver -preset bj-mini -addr :8080
//	rneserver -model bj.rne -addr :8080
//	curl 'localhost:8080/distance?s=17&t=4242'
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	rne "repro"
	"repro/internal/autoheal"
	"repro/internal/faultinject"
	"repro/internal/qlog"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "pre-trained model (with -index, full API; else distance/batch only)")
	indexPath := flag.String("index", "", "spatial index saved by rnebuild -index-out (requires -model)")
	registryRoot := flag.String("registry", "", "versioned model registry root (rnebuild -publish): serve the latest good version of -name and hot-swap it on SIGHUP or POST /admin/reload")
	regName := flag.String("name", "default", "model name within -registry")
	compact := flag.Bool("compact", false, "serve the float32 compact model at half the resident memory (/explain answers 501)")
	shardID := flag.Int("shard", -1, "serve geo-shard k of a sharded registry version (requires -registry; out-of-region sources answer 421, /knn, /range and /explain answer 501)")
	graphPath := flag.String("graph", "", "graph file: train on startup, full API")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed as spatial targets (clamped to [0,1])")
	altIndexPath := flag.String("alt-index", "", "ALT index saved by rnebuild -alt-out: guard mode clamps every estimate into certified landmark bounds")
	altLandmarks := flag.Int("alt-landmarks", 0, "with -graph/-preset: build an ALT guard index with this many landmarks at startup (0 disables)")
	seed := flag.Int64("seed", 42, "training seed")
	maxInFlight := flag.Int("max-inflight", 256, "in-flight request cap before shedding with 429 (negative disables; superseded by -admit-p99-target)")
	admitTarget := flag.Duration("admit-p99-target", 0, "adaptive admission: adjust the in-flight cap to hold observed p99 at this target, shedding /batch before /distance (0 keeps the static -max-inflight cap)")
	admitMin := flag.Int("admit-min", 4, "with -admit-p99-target: floor for the adapted in-flight cap")
	admitMax := flag.Int("admit-max", 4096, "with -admit-p99-target: ceiling for the adapted in-flight cap")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "drain budget for graceful shutdown")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and a /metrics mirror on this operator-only address (empty disables)")
	qlogPath := flag.String("qlog", "", "record a sampled query log (JSONL, replayable with rnereplay) at this path (empty disables)")
	qlogSample := flag.Int("qlog-sample", 100, "with -qlog: record 1 in N served queries")
	trace := flag.Bool("trace", false, "distributed tracing: handler/admission/kernel/guard spans, gateway traceparent honored, sampled span JSONL at -trace-out")
	traceOut := flag.String("trace-out", "server.spans.jsonl", "with -trace: span JSONL output path")
	traceSample := flag.Int("trace-sample", 1, "with -trace: keep one locally-rooted trace in N (gateway-sampled traces are always kept)")
	autoHeal := flag.Bool("autoheal", false, "run the drift→retrain→swap controller (requires -registry and -heal-graph)")
	healGraphPath := flag.String("heal-graph", "", "live graph file the autoheal controller probes for exact truth and retrains against (picked up again when the file changes)")
	healInterval := flag.Duration("heal-interval", 2*time.Second, "autoheal probe tick period")
	healProbes := flag.Int("heal-probes", 32, "autoheal probe pairs per tick")
	healBudget := flag.Float64("heal-budget", 3, "autoheal error budget: probe drift score (recent error over warmup baseline) above this for -heal-dwell consecutive ticks triggers a retrain")
	healDwell := flag.Int("heal-dwell", 3, "consecutive over-budget ticks before a heal triggers")
	healCooldown := flag.Duration("heal-cooldown", 30*time.Second, "minimum wait between heal attempts")
	healWarmup := flag.Int("heal-warmup", 96, "probe observations freezing the autoheal drift baseline")
	healEpochs := flag.Int("heal-epochs", 3, "SGD epochs per phase during an autoheal fine-tune")
	healRounds := flag.Int("heal-rounds", 4, "active fine-tune rounds during an autoheal retrain")
	faults := flag.String("faults", "", "arm fault-injection failpoints for chaos testing: name[:after=N][:count=M],... (e.g. core/checkpoint-save:count=1)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rneserver:", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logFormat)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if *targetFrac < 0 || math.IsNaN(*targetFrac) {
		fatal("-target-frac must be non-negative", "got", *targetFrac)
	}
	if spec := *faults; spec != "" {
		if err := faultinject.EnableSpec(spec); err != nil {
			fatal("arming failpoints", "error", err)
		}
		logger.Warn("fault injection armed", "spec", spec)
	}
	if *autoHeal && (*registryRoot == "" || *healGraphPath == "") {
		fatal("-autoheal requires -registry and -heal-graph")
	}
	if *shardID >= 0 {
		if *registryRoot == "" {
			fatal("-shard requires -registry (shards are published by rnebuild -publish-shards)")
		}
		if *compact {
			fatal("-shard is exclusive with -compact (shards already carry only their region's rows)")
		}
		if *autoHeal {
			fatal("-autoheal needs the full model to retrain; run it on a full replica that republishes shards, not on a -shard replica")
		}
	}

	var set server.ModelSet
	var reloader func() (server.ModelSet, error)
	var store *rne.ModelRegistry

	var model *rne.Model
	var idx *rne.SpatialIndex
	var altIdx *rne.ALTIndex
	switch {
	case *registryRoot != "":
		if *modelPath != "" || *graphPath != "" || *preset != "" {
			fatal("-registry is exclusive with -model, -graph and -preset")
		}
		store, err = rne.OpenModelRegistry(*registryRoot)
		if err != nil {
			fatal("opening registry", "error", err)
		}
		loadSet := func() (server.ModelSet, error) {
			var rs *rne.RegistrySet
			var err error
			if *shardID >= 0 {
				rs, err = store.LoadLatestShard(*regName, *shardID)
			} else {
				rs, err = store.LoadLatest(*regName, rne.RegistryLoadOpts{Compact: *compact})
			}
			if err != nil {
				return server.ModelSet{}, err
			}
			return registrySet(rs)
		}
		set, err = loadSet()
		if err != nil {
			fatal("loading from registry", "error", err)
		}
		reloader = loadSet
		if set.Shard != nil {
			logger.Info("loaded shard from registry", "name", *regName, "version", set.Version,
				"shard", set.Shard.ShardID(), "of", set.Shard.NumShards(),
				"owned", set.Shard.OwnedVertices(), "guard", set.Guard != nil)
		} else {
			logger.Info("loaded from registry", "name", *regName, "version", set.Version,
				"compact", *compact, "guard", set.Guard != nil, "spatial", set.Index != nil)
		}
	case *modelPath != "":
		var err error
		model, err = rne.LoadModel(*modelPath)
		if err != nil {
			fatal("loading model", "error", err)
		}
		logger.Info("loaded model", "vertices", model.NumVertices(), "dim", model.Dim())
		if *indexPath != "" {
			idx, err = rne.LoadSpatialIndex(*indexPath, model)
			if err != nil {
				fatal("loading spatial index", "error", err)
			}
			logger.Info("loaded spatial index", "targets", idx.Size())
		} else {
			logger.Warn("no spatial index: serving degraded (/knn and /range disabled)")
		}
	case *graphPath != "" || *preset != "":
		var g *rne.Graph
		var err error
		if *graphPath != "" {
			g, err = rne.LoadGraph(*graphPath)
		} else {
			g, err = rne.Preset(*preset)
		}
		if err != nil {
			fatal("loading graph", "error", err)
		}
		logger.Info("training", "vertices", g.NumVertices())
		start := time.Now()
		var stats rne.BuildStats
		opt := rne.DefaultOptions(*seed)
		opt.Logger = logger
		model, stats, err = rne.Build(g, opt)
		if err != nil {
			fatal("training", "error", err)
		}
		logger.Info("trained", "duration", time.Since(start).Round(time.Millisecond),
			"validation", stats.Validation.String())

		targets, err := rne.SampleTargets(g, *targetFrac, *seed)
		if err != nil {
			fatal("sampling targets", "error", err)
		}
		idx, err = rne.NewSpatialIndex(model, targets)
		if err != nil {
			fatal("building spatial index", "error", err)
		}
		logger.Info("spatial index ready", "targets", idx.Size())

		if *altIndexPath == "" && *altLandmarks > 0 {
			altIdx, err = rne.BuildALTIndex(g, *altLandmarks, *seed+2)
			if err != nil {
				fatal("building ALT guard index", "error", err)
			}
			logger.Info("built ALT guard index", "landmarks", altIdx.NumLandmarks())
		}
	default:
		fatal("need -registry, -model, -graph or -preset")
	}

	if *registryRoot == "" {
		if *altIndexPath != "" {
			var err error
			altIdx, err = rne.LoadALTIndex(*altIndexPath)
			if err != nil {
				fatal("loading ALT index", "error", err)
			}
			logger.Info("loaded ALT index",
				"landmarks", altIdx.NumLandmarks(), "vertices", altIdx.NumVertices())
		}
		set = server.ModelSet{Model: model, Index: idx, Version: "boot"}
		if *compact {
			// Swap the float64 model for its float32 sibling before
			// serving: the full matrix is released and resident model
			// memory halves. Explain surfaces answer 501 and the spatial
			// index (which needs the full model) is dropped.
			cm, err := model.Compact()
			if err != nil {
				fatal("compacting model", "error", err)
			}
			set = server.ModelSet{Compact: cm, Version: "boot"}
			if idx != nil {
				logger.Warn("-compact drops the spatial index: /knn and /range answer 501")
			}
			logger.Info("serving the float32 compact model",
				"bytes", cm.IndexBytes(), "full_bytes", model.IndexBytes())
			model = nil
		}
		if altIdx != nil {
			var err error
			if set.Model != nil {
				set.Guard, err = rne.NewBoundedEstimatorFromIndex(set.Model, altIdx)
			} else {
				set.Guard, err = rne.NewCompactBoundedEstimator(set.Compact, altIdx)
			}
			if err != nil {
				fatal("enabling guard mode", "error", err)
			}
			logger.Info("guard mode on: estimates clamped into certified landmark bounds, drift monitor active")
		}
	}

	srvCfg := server.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
		QueryLog:       qlog.Config{Path: *qlogPath, SampleEvery: *qlogSample},
		Reloader:       reloader,
	}
	if *trace {
		srvCfg.Trace = telemetry.TraceConfig{
			Path:        *traceOut,
			Service:     "server",
			SampleEvery: *traceSample,
		}
	}
	if *admitTarget > 0 {
		srvCfg.Admission = &resilience.AdmissionConfig{
			TargetP99: *admitTarget,
			Min:       *admitMin,
			Max:       *admitMax,
		}
		logger.Info("adaptive admission on", "p99_target", *admitTarget,
			"min", *admitMin, "max", *admitMax)
	}
	srv, err := server.NewFromSet(set, srvCfg)
	if err != nil {
		fatal("configuring server", "error", err)
	}
	// SIGHUP triggers the same validated hot swap as POST /admin/reload:
	// re-resolve the registry's latest good version, smoke-test it, and
	// install it atomically; a failed reload leaves the previous version
	// serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if reloader == nil {
				logger.Warn("SIGHUP ignored: started without -registry, nothing to reload")
				continue
			}
			previous := srv.ActiveVersion()
			version, err := srv.Reload()
			if err != nil {
				logger.Warn("SIGHUP reload failed; previous model keeps serving",
					"active", previous, "error", err)
				continue
			}
			logger.Info("SIGHUP reload complete", "from", previous, "to", version)
		}
	}()
	if *qlogPath != "" {
		logger.Info("query log on", "path", *qlogPath, "sample", fmt.Sprintf("1-in-%d", *qlogSample))
	}
	if *trace {
		logger.Info("tracing on", "path", *traceOut, "sample", fmt.Sprintf("1-in-%d", *traceSample))
	}

	// The autoheal controller closes the drift→retrain→swap loop: it
	// probes served estimates against exact distances over -heal-graph,
	// and when the error budget stays blown through the dwell window it
	// fine-tunes the serving model against the live graph, publishes the
	// result and drives the same validated hot-swap path as SIGHUP.
	healCancel := func() {}
	if *autoHeal {
		prober := autoheal.NewGraphProber(*healGraphPath, *seed+11, srv.Estimate)
		ctrl, err := autoheal.New(autoheal.Config{
			Sample:   prober.Sample,
			Heal:     newHealer(store, srv, prober, *regName, *compact, *healEpochs, *healRounds, *seed, logger),
			Version:  srv.ActiveVersion,
			MaxDist:  srv.Scale,
			Interval: *healInterval,
			Probes:   *healProbes,
			Budget:   *healBudget,
			Dwell:    *healDwell,
			Cooldown: *healCooldown,
			Warmup:   *healWarmup,
			Registry: srv.Stats().Registry(),
			Logger:   logger,
			Tracer:   srv.Tracer(),
		})
		if err != nil {
			fatal("configuring autoheal", "error", err)
		}
		srv.Stats().SetStateProvider("autoheal", func() any { return ctrl.State() })
		healCtx, cancel := context.WithCancel(context.Background())
		ctrl.Start(healCtx)
		healCancel = func() {
			cancel()
			ctrl.Stop()
		}
		logger.Info("autoheal on", "graph", *healGraphPath, "interval", *healInterval,
			"budget", *healBudget, "dwell", *healDwell, "cooldown", *healCooldown)
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, srv, logger)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests through
	// http.Server.Shutdown within the grace budget.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal("serving", "error", err)
	case <-ctx.Done():
		stop()
		healCancel()
		logger.Info("signal received; draining in-flight requests", "grace", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown incomplete; closing remaining connections", "error", err)
			httpSrv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serving", "error", err)
		}
		// Flush and close the sampled query log after the drain so every
		// served request is either on disk or counted as dropped.
		if err := srv.Close(); err != nil {
			logger.Warn("closing query log", "error", err)
		}
		logger.Info("shutdown complete")
	}
}

// newHealer returns the autoheal controller's repair callback: load
// the serving version's full model as a warm start, fine-tune it
// against the prober's live graph, rebuild the ALT guard when the
// serving version carried one, publish the result and hot-swap it
// through the server's validated reload. A version that publishes but
// fails swap validation is quarantined so later reloads skip it.
func newHealer(store *rne.ModelRegistry, srv *server.Server, prober *autoheal.GraphProber,
	name string, compact bool, epochs, rounds int, seed int64, logger *slog.Logger) func(context.Context) (string, error) {
	return func(ctx context.Context) (string, error) {
		g := prober.Graph()
		if g == nil {
			return "", fmt.Errorf("heal: no probe graph loaded yet")
		}
		serving := srv.ActiveVersion()
		// Always warm-start from the full model: compact replicas still
		// fine-tune in float64 and publish both variants.
		warm, err := store.LoadVersion(name, serving, rne.RegistryLoadOpts{})
		if err != nil {
			return "", fmt.Errorf("heal: loading warm-start %s %s: %w", name, serving, err)
		}

		opt := rne.DefaultOptions(seed + 17)
		opt.Epochs = epochs
		opt.FineTuneRounds = rounds
		opt.Logger = logger
		// Checkpoint with StrictCheckpoints so an injected or real
		// checkpoint-write fault fails this attempt cleanly — the
		// controller rolls back, cools down and retries.
		opt.CheckpointPath = filepath.Join(os.TempDir(), fmt.Sprintf("rne-heal-%d.ckpt", os.Getpid()))
		opt.StrictCheckpoints = true
		defer os.Remove(opt.CheckpointPath)

		start := time.Now()
		_, ftSpan := telemetry.StartChild(ctx, "finetune")
		tuned, stats, err := rne.FineTune(g, warm.Model, opt)
		ftSpan.SetError(err)
		ftSpan.End()
		if err != nil {
			return "", fmt.Errorf("heal: fine-tune from %s: %w", serving, err)
		}
		logger.Info("heal: fine-tune complete", "from", serving,
			"duration", time.Since(start).Round(time.Millisecond),
			"validation", stats.Validation.String())

		art := rne.RegistryArtifacts{Model: tuned, Compact: compact || versionHasCompact(store, name, serving)}
		if warm.ALT != nil {
			art.ALT, err = rne.BuildALTIndex(g, warm.ALT.NumLandmarks(), seed+2)
			if err != nil {
				return "", fmt.Errorf("heal: rebuilding ALT guard: %w", err)
			}
		}
		_, pubSpan := telemetry.StartChild(ctx, "publish")
		version, err := store.Publish(name, art)
		pubSpan.SetError(err)
		pubSpan.End()
		if err != nil {
			return "", fmt.Errorf("heal: publishing: %w", err)
		}
		_, swapSpan := telemetry.StartChild(ctx, "swap")
		_, err = srv.Reload()
		swapSpan.SetAttr("version", version)
		swapSpan.SetError(err)
		swapSpan.End()
		if err != nil {
			if qerr := store.Quarantine(name, version); qerr != nil {
				logger.Error("heal: quarantining rejected version failed", "version", version, "error", qerr)
			}
			return "", fmt.Errorf("heal: swap validation rejected %s: %w", version, err)
		}
		return srv.ActiveVersion(), nil
	}
}

// versionHasCompact reports whether the named published version carries
// the float32 compact sibling, so a heal preserves whatever variants
// the fleet's replicas load.
func versionHasCompact(store *rne.ModelRegistry, name, version string) bool {
	vs, err := store.Versions(name)
	if err != nil {
		return false
	}
	for _, v := range vs {
		if v.Version != version {
			continue
		}
		for _, f := range v.Files {
			if f == registry.CompactFile {
				return true
			}
		}
	}
	return false
}

// registrySet converts a loaded registry version into the server's
// swap unit, building the ALT guard over whichever model variant the
// version was loaded with (the region-restricted guard, on a shard).
func registrySet(rs *rne.RegistrySet) (server.ModelSet, error) {
	set := server.ModelSet{
		Model:   rs.Model,
		Compact: rs.Compact,
		Shard:   rs.Shard,
		Index:   rs.Index,
		Version: rs.Version,
	}
	if rs.ALT != nil {
		var err error
		switch {
		case rs.Shard != nil:
			set.Guard, err = rne.NewShardBoundedEstimator(rs.Shard, rs.ALT)
		case rs.Model != nil:
			set.Guard, err = rne.NewBoundedEstimatorFromIndex(rs.Model, rs.ALT)
		default:
			set.Guard, err = rne.NewCompactBoundedEstimator(rs.Compact, rs.ALT)
		}
		if err != nil {
			return server.ModelSet{}, err
		}
	}
	return set, nil
}

// serveDebug runs the operator-only listener: net/http/pprof profiles
// and a mirror of /metrics, kept off the public mux so profiling
// endpoints are never exposed to query traffic.
func serveDebug(addr string, srv *server.Server, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", srv.Stats().Registry().Handler())
	logger.Info("debug listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Warn("debug listener failed", "addr", addr, "error", err)
	}
}
