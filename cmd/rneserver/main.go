// Command rneserver serves RNE distance queries over HTTP.
//
// With -graph (or -preset) it trains a model on startup and serves the
// full API including /knn and /range over the given target vertices;
// with -model it loads a pre-trained model and serves /distance and
// /batch only (the partition tree is not persisted) — /readyz then
// reports degraded mode unless -index supplies a saved spatial index.
//
// With -alt-index (a file saved by rnebuild -alt-out) or, in training
// mode, -alt-landmarks, the server runs in guard mode: every /distance
// and /batch estimate is clamped into the certified landmark interval
// [lo, hi] containing the true distance, responses report the interval
// and whether clamping occurred, and clamp counters appear on /statz.
//
// The server runs hardened for production traffic: handler panics are
// converted to 500s, requests past -max-inflight are shed with 429 +
// Retry-After, every request carries a -request-timeout deadline,
// request/latency counters are served on /statz, and SIGINT/SIGTERM
// triggers a graceful shutdown that drains in-flight requests.
//
// Usage:
//
//	rneserver -preset bj-mini -addr :8080
//	rneserver -model bj.rne -addr :8080
//	curl 'localhost:8080/distance?s=17&t=4242'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	rne "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "pre-trained model (with -index, full API; else distance/batch only)")
	indexPath := flag.String("index", "", "spatial index saved by rnebuild -index-out (requires -model)")
	graphPath := flag.String("graph", "", "graph file: train on startup, full API")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed as spatial targets (clamped to [0,1])")
	altIndexPath := flag.String("alt-index", "", "ALT index saved by rnebuild -alt-out: guard mode clamps every estimate into certified landmark bounds")
	altLandmarks := flag.Int("alt-landmarks", 0, "with -graph/-preset: build an ALT guard index with this many landmarks at startup (0 disables)")
	seed := flag.Int64("seed", 42, "training seed")
	maxInFlight := flag.Int("max-inflight", 256, "in-flight request cap before shedding with 429 (negative disables)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "drain budget for graceful shutdown")
	flag.Parse()
	if *targetFrac < 0 || math.IsNaN(*targetFrac) {
		log.Fatalf("rneserver: -target-frac must be non-negative, got %v", *targetFrac)
	}

	var model *rne.Model
	var idx *rne.SpatialIndex
	var altIdx *rne.ALTIndex
	switch {
	case *modelPath != "":
		var err error
		model, err = rne.LoadModel(*modelPath)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("loaded model: %d vertices, d=%d", model.NumVertices(), model.Dim())
		if *indexPath != "" {
			idx, err = rne.LoadSpatialIndex(*indexPath, model)
			if err != nil {
				log.Fatal("rneserver: ", err)
			}
			log.Printf("loaded spatial index over %d targets", idx.Size())
		} else {
			log.Printf("no spatial index: serving degraded (/knn and /range disabled)")
		}
	case *graphPath != "" || *preset != "":
		var g *rne.Graph
		var err error
		if *graphPath != "" {
			g, err = rne.LoadGraph(*graphPath)
		} else {
			g, err = rne.Preset(*preset)
		}
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("training over %d vertices...", g.NumVertices())
		start := time.Now()
		var stats rne.BuildStats
		model, stats, err = rne.Build(g, rne.DefaultOptions(*seed))
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("trained in %v, validation %s", time.Since(start).Round(time.Millisecond), stats.Validation)

		targets, err := rne.SampleTargets(g, *targetFrac, *seed)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		idx, err = rne.NewSpatialIndex(model, targets)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("spatial index over %d targets", idx.Size())

		if *altIndexPath == "" && *altLandmarks > 0 {
			altIdx, err = rne.BuildALTIndex(g, *altLandmarks, *seed+2)
			if err != nil {
				log.Fatal("rneserver: ", err)
			}
			log.Printf("built ALT guard index with %d landmarks", altIdx.NumLandmarks())
		}
	default:
		log.Fatal("rneserver: need -model, -graph or -preset")
	}

	var guard *rne.BoundedEstimator
	if *altIndexPath != "" {
		var err error
		altIdx, err = rne.LoadALTIndex(*altIndexPath)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("loaded ALT index: %d landmarks over %d vertices",
			altIdx.NumLandmarks(), altIdx.NumVertices())
	}
	if altIdx != nil {
		var err error
		guard, err = rne.NewBoundedEstimatorFromIndex(model, altIdx)
		if err != nil {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("guard mode on: /distance and /batch clamped into certified landmark bounds")
	}

	srv, err := server.NewWithConfig(model, idx, server.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Logf:           log.Printf,
		Guard:          guard,
	})
	if err != nil {
		log.Fatal("rneserver: ", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests through
	// http.Server.Shutdown within the grace budget.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("rneserver listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal("rneserver: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining in-flight requests (up to %v)...", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown incomplete: %v; closing remaining connections", err)
			httpSrv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("rneserver: ", err)
		}
		log.Printf("shutdown complete")
	}
}
