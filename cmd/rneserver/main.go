// Command rneserver serves RNE distance queries over HTTP.
//
// With -graph (or -preset) it trains a model on startup and serves the
// full API including /knn and /range over the given target vertices;
// with -model it loads a pre-trained model and serves /distance and
// /batch only (the partition tree is not persisted) — /readyz then
// reports degraded mode unless -index supplies a saved spatial index.
//
// With -alt-index (a file saved by rnebuild -alt-out) or, in training
// mode, -alt-landmarks, the server runs in guard mode: every /distance
// and /batch estimate is clamped into the certified landmark interval
// [lo, hi] containing the true distance, responses report the interval
// and whether clamping occurred, and clamp counters appear on /statz.
// Guard mode also feeds the online accuracy-drift monitor on /metrics.
//
// The server runs hardened for production traffic: handler panics are
// converted to 500s, requests past -max-inflight are shed with 429 +
// Retry-After, every request carries a -request-timeout deadline and an
// X-Request-Id, request/latency counters are served on /statz (JSON)
// and /metrics (Prometheus text), and SIGINT/SIGTERM triggers a
// graceful shutdown that drains in-flight requests. -debug-addr serves
// net/http/pprof profiles (plus a /metrics mirror) on a separate,
// operator-only listener. -qlog records a 1-in-N sample of served
// queries as JSONL (never blocking the serving path; overflow is
// dropped and counted on /metrics) for offline replay with rnereplay.
//
// Usage:
//
//	rneserver -preset bj-mini -addr :8080
//	rneserver -model bj.rne -addr :8080
//	curl 'localhost:8080/distance?s=17&t=4242'
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	rne "repro"
	"repro/internal/qlog"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "pre-trained model (with -index, full API; else distance/batch only)")
	indexPath := flag.String("index", "", "spatial index saved by rnebuild -index-out (requires -model)")
	graphPath := flag.String("graph", "", "graph file: train on startup, full API")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed as spatial targets (clamped to [0,1])")
	altIndexPath := flag.String("alt-index", "", "ALT index saved by rnebuild -alt-out: guard mode clamps every estimate into certified landmark bounds")
	altLandmarks := flag.Int("alt-landmarks", 0, "with -graph/-preset: build an ALT guard index with this many landmarks at startup (0 disables)")
	seed := flag.Int64("seed", 42, "training seed")
	maxInFlight := flag.Int("max-inflight", 256, "in-flight request cap before shedding with 429 (negative disables)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "drain budget for graceful shutdown")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and a /metrics mirror on this operator-only address (empty disables)")
	qlogPath := flag.String("qlog", "", "record a sampled query log (JSONL, replayable with rnereplay) at this path (empty disables)")
	qlogSample := flag.Int("qlog-sample", 100, "with -qlog: record 1 in N served queries")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rneserver:", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logFormat)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if *targetFrac < 0 || math.IsNaN(*targetFrac) {
		fatal("-target-frac must be non-negative", "got", *targetFrac)
	}

	var model *rne.Model
	var idx *rne.SpatialIndex
	var altIdx *rne.ALTIndex
	switch {
	case *modelPath != "":
		var err error
		model, err = rne.LoadModel(*modelPath)
		if err != nil {
			fatal("loading model", "error", err)
		}
		logger.Info("loaded model", "vertices", model.NumVertices(), "dim", model.Dim())
		if *indexPath != "" {
			idx, err = rne.LoadSpatialIndex(*indexPath, model)
			if err != nil {
				fatal("loading spatial index", "error", err)
			}
			logger.Info("loaded spatial index", "targets", idx.Size())
		} else {
			logger.Warn("no spatial index: serving degraded (/knn and /range disabled)")
		}
	case *graphPath != "" || *preset != "":
		var g *rne.Graph
		var err error
		if *graphPath != "" {
			g, err = rne.LoadGraph(*graphPath)
		} else {
			g, err = rne.Preset(*preset)
		}
		if err != nil {
			fatal("loading graph", "error", err)
		}
		logger.Info("training", "vertices", g.NumVertices())
		start := time.Now()
		var stats rne.BuildStats
		opt := rne.DefaultOptions(*seed)
		opt.Logger = logger
		model, stats, err = rne.Build(g, opt)
		if err != nil {
			fatal("training", "error", err)
		}
		logger.Info("trained", "duration", time.Since(start).Round(time.Millisecond),
			"validation", stats.Validation.String())

		targets, err := rne.SampleTargets(g, *targetFrac, *seed)
		if err != nil {
			fatal("sampling targets", "error", err)
		}
		idx, err = rne.NewSpatialIndex(model, targets)
		if err != nil {
			fatal("building spatial index", "error", err)
		}
		logger.Info("spatial index ready", "targets", idx.Size())

		if *altIndexPath == "" && *altLandmarks > 0 {
			altIdx, err = rne.BuildALTIndex(g, *altLandmarks, *seed+2)
			if err != nil {
				fatal("building ALT guard index", "error", err)
			}
			logger.Info("built ALT guard index", "landmarks", altIdx.NumLandmarks())
		}
	default:
		fatal("need -model, -graph or -preset")
	}

	var guard *rne.BoundedEstimator
	if *altIndexPath != "" {
		var err error
		altIdx, err = rne.LoadALTIndex(*altIndexPath)
		if err != nil {
			fatal("loading ALT index", "error", err)
		}
		logger.Info("loaded ALT index",
			"landmarks", altIdx.NumLandmarks(), "vertices", altIdx.NumVertices())
	}
	if altIdx != nil {
		var err error
		guard, err = rne.NewBoundedEstimatorFromIndex(model, altIdx)
		if err != nil {
			fatal("enabling guard mode", "error", err)
		}
		logger.Info("guard mode on: estimates clamped into certified landmark bounds, drift monitor active")
	}

	srv, err := server.NewWithConfig(model, idx, server.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
		Guard:          guard,
		QueryLog:       qlog.Config{Path: *qlogPath, SampleEvery: *qlogSample},
	})
	if err != nil {
		fatal("configuring server", "error", err)
	}
	if *qlogPath != "" {
		logger.Info("query log on", "path", *qlogPath, "sample", fmt.Sprintf("1-in-%d", *qlogSample))
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, srv, logger)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests through
	// http.Server.Shutdown within the grace budget.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal("serving", "error", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining in-flight requests", "grace", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown incomplete; closing remaining connections", "error", err)
			httpSrv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serving", "error", err)
		}
		// Flush and close the sampled query log after the drain so every
		// served request is either on disk or counted as dropped.
		if err := srv.Close(); err != nil {
			logger.Warn("closing query log", "error", err)
		}
		logger.Info("shutdown complete")
	}
}

// serveDebug runs the operator-only listener: net/http/pprof profiles
// and a mirror of /metrics, kept off the public mux so profiling
// endpoints are never exposed to query traffic.
func serveDebug(addr string, srv *server.Server, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", srv.Stats().Registry().Handler())
	logger.Info("debug listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Warn("debug listener failed", "addr", addr, "error", err)
	}
}
