// Command rnereplay re-runs a recorded query workload against a model
// and an exact Dijkstra oracle, offline: the regression harness for
// the sampled serving log (rneserver -qlog). It aggregates relative
// error per distance band and per hierarchy level, reproduces the live
// drift monitor's band scores from guard bounds, writes the report as
// JSON, and — given a baseline report from a previous run — emits an
// ok/regression verdict, exiting non-zero on regression so CI can gate
// model changes on recorded production traffic.
//
// The graph is always required (it is the ground-truth oracle). The
// model is either re-trained from it deterministically (-seed; gives
// per-level error attribution) or loaded with -model (per-level
// attribution is then unavailable: saved models drop the partition
// tree). -landmarks adds an ALT guard so drift bands are scored the
// way a guarded server would.
//
// With -traces, rnereplay instead runs tail-latency attribution: it
// reads span JSONL files written by traced rnegate/rneserver
// processes (-trace-out), stitches spans into whole traces, and
// reports the queue/network/kernel/guard share of request p50/p95/p99
// plus the slowest concrete traces to go read. No graph, model or
// query log is needed in this mode.
//
// Usage:
//
//	rnereplay -graph bj.txt -log queries.jsonl -out BENCH_replay.json
//	rnereplay -graph bj.txt -gen 5000 -landmarks 8 -out now.json -baseline BENCH_replay.json
//	rnereplay -traces gw.spans.jsonl,s1.spans.jsonl,s2.spans.jsonl -out BENCH_trace.json
//
// Exit codes: 0 ok, 1 error, 2 usage, 3 regression verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	rne "repro"
	"repro/internal/qlog"
	"repro/internal/replay"
)

func main() {
	graphPath := flag.String("graph", "", "graph file: the exact-distance oracle (required unless -preset)")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	modelPath := flag.String("model", "", "pre-trained model; omit to retrain from the graph with -seed")
	seed := flag.Int64("seed", 42, "training seed when retraining")
	quick := flag.Bool("quick", false, "cheap training settings for smoke tests (small dim, one epoch)")
	logPath := flag.String("log", "", "query log (JSONL from rneserver -qlog) to replay")
	genN := flag.Int("gen", 0, "generate this many random queries instead of -log")
	landmarks := flag.Int("landmarks", 0, "build an ALT guard with this many landmarks and score drift bands (0 disables)")
	outPath := flag.String("out", "BENCH_replay.json", "report output path")
	qlogOut := flag.String("qlog-out", "", "also record the replayed workload as a fresh query log at this path")
	baselinePath := flag.String("baseline", "", "previous report to diff against; regression exits 3")
	tolFactor := flag.Float64("tolerance", 0.10, "allowed fractional error worsening before the diff flags a regression")
	tracesArg := flag.String("traces", "", "comma-separated span JSONL files: run tail-latency attribution instead of an error replay")
	p99On := flag.Float64("p99-on", 0, "measured p99 with tracing on, microseconds (embedded in the -traces report)")
	p99Off := flag.Float64("p99-off", 0, "measured p99 with tracing off, microseconds (embedded in the -traces report)")
	flag.Parse()

	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rnereplay: "+format+"\n", args...)
		os.Exit(1)
	}
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rnereplay: "+format+"\n", args...)
		os.Exit(2)
	}

	if *tracesArg != "" {
		// Attribution mode needs no oracle: the spans carry their own
		// ground truth (measured durations).
		out := *outPath
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				set = true
			}
		})
		if !set {
			out = "BENCH_trace.json"
		}
		if err := runTraces(strings.Split(*tracesArg, ","), out, *p99On, *p99Off); err != nil {
			fatal("%v", err)
		}
		return
	}

	var g *rne.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = rne.LoadGraph(*graphPath)
	case *preset != "":
		g, err = rne.Preset(*preset)
	default:
		usage("need -graph or -preset (the exact-distance oracle)")
	}
	if err != nil {
		fatal("loading graph: %v", err)
	}

	var queries []replay.Query
	switch {
	case *logPath != "" && *genN > 0:
		usage("-log and -gen are mutually exclusive")
	case *logPath != "":
		queries, err = replay.ReadLogFile(*logPath)
		if err != nil {
			fatal("%v", err)
		}
	case *genN > 0:
		queries = replay.GenerateWorkload(g.NumVertices(), *genN, *seed+1)
	default:
		usage("need -log or -gen")
	}

	var model *rne.Model
	if *modelPath != "" {
		model, err = rne.LoadModel(*modelPath)
		if err != nil {
			fatal("loading model: %v", err)
		}
	} else {
		opt := rne.DefaultOptions(*seed)
		if *quick {
			opt.Dim = 8
			opt.Epochs = 1
			opt.VertexSampleRatio = 5
			opt.FineTuneRounds = 1
			opt.HierSampleCap = 1000
			opt.ValidationPairs = 50
		}
		model, _, err = rne.Build(g, opt)
		if err != nil {
			fatal("training: %v", err)
		}
	}

	var guard *rne.BoundedEstimator
	if *landmarks > 0 {
		altIdx, err := rne.BuildALTIndex(g, *landmarks, *seed+2)
		if err != nil {
			fatal("building ALT guard: %v", err)
		}
		guard, err = rne.NewBoundedEstimatorFromIndex(model, altIdx)
		if err != nil {
			fatal("enabling guard: %v", err)
		}
	}

	rep, err := replay.Run(model, guard, g, queries, replay.Options{})
	if err != nil {
		fatal("%v", err)
	}
	rep.WriteHuman(os.Stdout)

	if *qlogOut != "" {
		if err := recordWorkload(*qlogOut, model, guard, queries); err != nil {
			fatal("recording workload: %v", err)
		}
		fmt.Printf("recorded %d queries to %s\n", len(queries), *qlogOut)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s\n", *outPath)

	if *baselinePath != "" {
		base, err := replay.LoadReport(*baselinePath)
		if err != nil {
			fatal("%v", err)
		}
		d := replay.Diff(base, rep, replay.Tolerances{RelFactor: *tolFactor})
		fmt.Printf("diff vs %s: %s\n", *baselinePath, d.Verdict)
		for _, r := range d.Reasons {
			fmt.Println(" ", r)
		}
		if d.Regressed() {
			os.Exit(3)
		}
	}
}

// runTraces is the -traces mode: read span JSONL, aggregate into the
// per-hop tail-latency report, print it and write it as JSON.
func runTraces(paths []string, outPath string, p99OnUS, p99OffUS float64) error {
	clean := paths[:0]
	for _, p := range paths {
		if p = strings.TrimSpace(p); p != "" {
			clean = append(clean, p)
		}
	}
	spans, err := replay.ReadSpanFiles(clean)
	if err != nil {
		return err
	}
	rep, err := replay.AggregateTraces(spans)
	if err != nil {
		return err
	}
	if p99OnUS > 0 || p99OffUS > 0 {
		rep.SetOverhead(p99OnUS, p99OffUS)
	}
	rep.WriteHuman(os.Stdout)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// recordWorkload writes the workload back out as a query log — every
// query, unsampled — so a generated workload becomes a replayable
// fixture for future runs.
func recordWorkload(path string, model *rne.Model, guard *rne.BoundedEstimator, queries []replay.Query) error {
	l, err := qlog.New(qlog.Config{Path: path, QueueSize: len(queries) + 1})
	if err != nil {
		return err
	}
	for _, q := range queries {
		rec := qlog.Record{Route: "replay", S: q.S, T: q.T}
		if guard != nil {
			gr := guard.Guard(q.S, q.T)
			rec.Estimate, rec.Raw, rec.Lo, rec.Hi = gr.Est, gr.Raw, gr.Lo, gr.Hi
			rec.HasBounds = true
		} else {
			rec.Estimate = model.Estimate(q.S, q.T)
		}
		l.Observe(rec)
	}
	if err := l.Close(); err != nil {
		return err
	}
	if dropped := l.Dropped(); dropped > 0 {
		return fmt.Errorf("dropped %d of %d records", dropped, len(queries))
	}
	return nil
}
