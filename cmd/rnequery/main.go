// Command rnequery answers shortest-path distance queries from a saved
// RNE model. Queries are "s t" vertex-id pairs, one per line on stdin,
// or a single pair via -s/-t flags.
//
// -explain prints the estimate's provenance instead of the bare value:
// the per-hierarchy-level contribution breakdown (models re-trained in
// process; saved models drop the partition tree and report the total
// only) and, with -alt-index, the certified guard interval with the
// landmarks that produced it and the clamp direction.
//
// -knn and -range switch to spatial queries over a saved index
// (-index, from rnebuild -index-out): the k nearest indexed targets to
// -s, or all targets within -tau. Both print the triangle-inequality
// pruning counters with -explain.
//
// Usage:
//
//	rnequery -model bj.rne -s 17 -t 4242
//	rnequery -model bj.rne -alt-index bj.alt -s 17 -t 4242 -explain
//	rnequery -model bj.rne -index bj.idx -s 17 -knn 5
//	rnequery -model bj.rne -index bj.idx -s 17 -range 2500
//	shuf pairs.txt | rnequery -model bj.rne
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	rne "repro"
)

func main() {
	modelPath := flag.String("model", "", "model file from rnebuild")
	indexPath := flag.String("index", "", "spatial index from rnebuild -index-out (for -knn/-range)")
	altPath := flag.String("alt-index", "", "ALT index from rnebuild -alt-out: adds certified bounds and clamp provenance")
	s := flag.Int("s", -1, "source vertex (with -t, -knn or -range)")
	t := flag.Int("t", -1, "target vertex")
	k := flag.Int("knn", 0, "return the k nearest indexed targets to -s (requires -index)")
	tau := flag.Float64("range", -1, "return indexed targets within this distance of -s (requires -index)")
	explain := flag.Bool("explain", false, "print estimate provenance (per-level contributions, guard bounds, traversal stats)")
	flag.Parse()

	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rnequery: "+format+"\n", args...)
		os.Exit(1)
	}
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "rnequery: -model required")
		os.Exit(2)
	}
	model, err := rne.LoadModel(*modelPath)
	if err != nil {
		fatal("%v", err)
	}
	n := model.NumVertices()

	var guard *rne.BoundedEstimator
	if *altPath != "" {
		altIdx, err := rne.LoadALTIndex(*altPath)
		if err != nil {
			fatal("%v", err)
		}
		guard, err = rne.NewBoundedEstimatorFromIndex(model, altIdx)
		if err != nil {
			fatal("%v", err)
		}
	}

	if *k > 0 || *tau >= 0 {
		if *indexPath == "" {
			fatal("-knn and -range need -index")
		}
		if *s < 0 || *s >= n {
			fatal("-knn and -range need a valid -s, got %d", *s)
		}
		idx, err := rne.LoadSpatialIndex(*indexPath, model)
		if err != nil {
			fatal("%v", err)
		}
		spatial(model, idx, int32(*s), *k, *tau, *explain)
		return
	}

	answer := func(s, t int) error {
		if s < 0 || s >= n || t < 0 || t >= n {
			return fmt.Errorf("pair (%d,%d) outside [0,%d)", s, t, n)
		}
		if *explain {
			explainPair(model, guard, int32(s), int32(t))
			return nil
		}
		est := model.Estimate(int32(s), int32(t))
		if guard != nil {
			est = guard.Estimate(int32(s), int32(t))
		}
		fmt.Printf("%d %d %.2f\n", s, t, est)
		return nil
	}

	if *s >= 0 && *t >= 0 {
		if err := answer(*s, *t); err != nil {
			fatal("%v", err)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			fatal("line %d: want 's t', got %q", line, text)
		}
		sv, err1 := strconv.Atoi(fields[0])
		tv, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			fatal("line %d: bad vertex ids %q", line, text)
		}
		if err := answer(sv, tv); err != nil {
			fatal("line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		fatal("%v", err)
	}
}

// explainPair prints the provenance view of one estimate.
func explainPair(model *rne.Model, guard *rne.BoundedEstimator, s, t int32) {
	ex := model.ExplainEstimate(s, t)
	est := ex.Estimate
	var prov rne.GuardProvenance
	if guard != nil {
		prov = guard.Explain(s, t)
		est = prov.Est
	}
	fmt.Printf("%d %d %.2f\n", s, t, est)
	if ex.HasHierarchy {
		fmt.Printf("  raw model estimate %.2f, dominant level %d\n", ex.Estimate, ex.DominantLevel())
		for _, lc := range ex.Levels {
			shared := ""
			if lc.Shared {
				shared = "  (shared subtree)"
			}
			fmt.Printf("  level %2d  nodes (%d,%d)  partial %10.2f  contribution %+10.2f%s\n",
				lc.Level, lc.NodeS, lc.NodeT, lc.Partial, lc.Contribution, shared)
		}
	} else {
		fmt.Printf("  raw model estimate %.2f (no hierarchy retained: per-level breakdown unavailable)\n", ex.Estimate)
	}
	if guard != nil {
		clamp := "within bounds"
		switch {
		case prov.ClampedLow:
			clamp = "clamped up to lo"
		case prov.ClampedHigh:
			clamp = "clamped down to hi"
		}
		fmt.Printf("  guard: certified [%.2f, %.2f] via landmarks (lo %d, hi %d), raw %.2f %s\n",
			prov.Lo, prov.Hi, prov.LoLandmark, prov.HiLandmark, prov.Raw, clamp)
	}
}

// spatial runs one -knn or -range query, with traversal counters under
// -explain.
func spatial(model *rne.Model, idx *rne.SpatialIndex, s int32, k int, tau float64, explain bool) {
	var targets []int32
	var st rne.IndexQueryStats
	what := ""
	if k > 0 {
		targets, st = idx.KNNStats(s, k)
		what = fmt.Sprintf("knn k=%d", k)
	} else {
		targets, st = idx.RangeStats(s, tau)
		what = fmt.Sprintf("range tau=%.2f", tau)
	}
	for _, v := range targets {
		fmt.Printf("%d %d %.2f\n", s, v, model.Estimate(s, v))
	}
	if explain {
		fmt.Printf("  %s: %d results; visited %d nodes, pruned %d, scanned %d vertices\n",
			what, len(targets), st.NodesVisited, st.NodesPruned, st.VertsScanned)
	}
}
