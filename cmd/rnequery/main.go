// Command rnequery answers shortest-path distance queries from a saved
// RNE model. Queries are "s t" vertex-id pairs, one per line on stdin,
// or a single pair via -s/-t flags.
//
// Usage:
//
//	rnequery -model bj.rne -s 17 -t 4242
//	shuf pairs.txt | rnequery -model bj.rne
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	rne "repro"
)

func main() {
	modelPath := flag.String("model", "", "model file from rnebuild")
	s := flag.Int("s", -1, "source vertex (with -t)")
	t := flag.Int("t", -1, "target vertex")
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "rnequery: -model required")
		os.Exit(2)
	}
	model, err := rne.LoadModel(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnequery:", err)
		os.Exit(1)
	}
	n := model.NumVertices()

	answer := func(s, t int) error {
		if s < 0 || s >= n || t < 0 || t >= n {
			return fmt.Errorf("pair (%d,%d) outside [0,%d)", s, t, n)
		}
		fmt.Printf("%d %d %.2f\n", s, t, model.Estimate(int32(s), int32(t)))
		return nil
	}

	if *s >= 0 && *t >= 0 {
		if err := answer(*s, *t); err != nil {
			fmt.Fprintln(os.Stderr, "rnequery:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			fmt.Fprintf(os.Stderr, "rnequery: line %d: want 's t', got %q\n", line, text)
			os.Exit(1)
		}
		sv, err1 := strconv.Atoi(fields[0])
		tv, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "rnequery: line %d: bad vertex ids %q\n", line, text)
			os.Exit(1)
		}
		if err := answer(sv, tv); err != nil {
			fmt.Fprintf(os.Stderr, "rnequery: line %d: %v\n", line, err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "rnequery:", err)
		os.Exit(1)
	}
}
