// Command rnebench regenerates the paper's tables and figures.
//
// Usage:
//
//	rnebench -exp table3             # one experiment
//	rnebench -exp all                # everything (long)
//	rnebench -exp fig11 -quick       # CI-sized run
//	rnebench -list                   # show experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
)

var experiments = map[string]func(io.Writer, bench.Config) error{
	"table2": bench.Table2,
	"table3": bench.Table3,
	"table4": bench.Table4,
	"fig7":   bench.Fig7,
	"fig8":   bench.Fig8,
	"fig9":   bench.Fig9,
	"fig10":  bench.Fig10,
	"fig11":  bench.Fig11,
	"fig12":  bench.Fig12,
	"fig13":  bench.Fig13,
	"fig14":  bench.Fig14,
	"fig15":  bench.Fig15,
	"fig16":  bench.Fig16,
	"fig17":  bench.Fig17,

	// Beyond the paper: ablations of DESIGN.md design choices and the
	// two extensions (compact float32 model, LT-clamped hybrid).
	"fig16-knn":          bench.Fig16KNN,
	"suite":              bench.Suite,
	"ablation-partition": bench.AblationPartition,
	"ablation-gridk":     bench.AblationGridK,
	"ablation-landmarks": bench.AblationLandmarks,
	"ablation-compact":   bench.AblationCompact,
	"ablation-hybrid":    bench.AblationHybrid,
	"ablation-optimizer": bench.AblationOptimizer,
	"ablation-topology":  bench.AblationTopology,

	// Operational: exercises the telemetry histograms end to end and
	// emits BENCH_telemetry.json with latency/error percentiles.
	"telemetry-smoke": bench.TelemetrySmoke,
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "CI-sized datasets and query counts")
	scale := flag.Float64("scale", 0, "override dataset scale factor")
	queries := flag.Int("queries", 0, "override per-measurement query count")
	seed := flag.Int64("seed", 42, "workload/build seed")
	flag.Parse()

	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "rnebench: -exp required (use -list for ids)")
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}

	run := func(id string) {
		f, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rnebench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := f(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rnebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range ids {
			run(id)
		}
		return
	}
	run(*exp)
}
