// Command rnegate is the scale-out gateway in front of rneserver
// replicas: it fans POST /batch out across the backends by consistent
// hashing on each pair's source vertex, merges the replies preserving
// request order, and proxies GET /distance to the source vertex's
// ring owner. Backends are health-checked (active /readyz probes plus
// passive failure counting); a repeatedly-failing backend is ejected
// from routing and re-probed on exponential backoff until it recovers.
//
// With -shard-map (the routing table of a version published by
// rnebuild -publish-shards) the gateway routes by region instead of
// by hash: each request goes to a replica serving the owning geo-shard
// of its source vertex (shard identity is discovered from /readyz),
// /batch is split per shard, GET /knn and /range are proxied to the
// region owner, and /readyz degrades per region — losing every replica
// of one shard fails only that region's vertices.
//
// The gateway serves overload-safely: each proxied call forwards the
// remaining request deadline as an X-Rne-Budget-Ms budget so replicas
// abandon work the gateway can no longer use (504), backend 429/503
// answers count as backpressure — relayed or retried, never ejection
// fodder — and retries are bounded by a -retry-budget token bucket so
// a partial outage cannot double the load on the survivors. When the
// budget is drained the gateway degrades: /distance relays the
// backend's own 429 or sheds with jittered Retry-After, and /batch
// answers 206 with the surviving pairs plus per-pair error entries.
// -hedge arms hedged /distance requests (second attempt after the
// observed p95, first answer wins); -admit-p99-target swaps the static
// in-flight cap for the adaptive AIMD limiter, as on rneserver.
//
// The gateway exposes the same operational surface as the replicas:
// /healthz, /readyz, /statz (JSON) and /metrics (Prometheus text),
// including per-backend health gauges and ejection counters, plus
// rne_retries_total, rne_hedges_total{won=}, rne_batch_partial_total
// and rne_gateway_backend_backpressure_total. -debug-addr serves
// net/http/pprof and a /metrics mirror on a separate operator-only
// listener, as on rneserver.
//
// Usage:
//
//	rnegate -addr :9090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	curl 'localhost:9090/distance?s=17&t=4242'
//	curl -d '{"pairs":[[17,4242],[3,99]]}' localhost:9090/batch
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rne "repro"
	"repro/internal/gateway"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	backends := flag.String("backends", "", "comma-separated rneserver base URLs (required)")
	shardMapPath := flag.String("shard-map", "", "vertex→shard routing map from a sharded registry version (models/<name>/<vN>/shards/shardmap.rnemap): route by region instead of consistent hash")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per backend on the consistent-hash ring (ignored with -shard-map)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "active /readyz probe period")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures before a backend is ejected")
	backoffBase := flag.Duration("backoff-base", 500*time.Millisecond, "initial re-probe backoff for an ejected backend")
	backoffMax := flag.Duration("backoff-max", 15*time.Second, "re-probe backoff cap")
	backendTimeout := flag.Duration("backend-timeout", 10*time.Second, "per-backend call deadline")
	retryBudget := flag.Float64("retry-budget", 0.1, "retry/hedge token budget: each primary request earns this many tokens, each retry or hedge spends one (negative disables retries and hedges)")
	hedge := flag.Bool("hedge", false, "hedge slow /distance calls: fire a second attempt to the next ring owner after the observed p95 backend latency, first answer wins (spends retry-budget tokens)")
	hedgeMinDelay := flag.Duration("hedge-min-delay", time.Millisecond, "with -hedge: floor for the p95-derived hedge delay")
	hedgeMaxDelay := flag.Duration("hedge-max-delay", 250*time.Millisecond, "with -hedge: ceiling for the p95-derived hedge delay (also the cold-start delay)")
	budgetMargin := flag.Duration("budget-margin", 5*time.Millisecond, "proxy-hop margin subtracted from the deadline budget forwarded to backends as X-Rne-Budget-Ms (negative disables)")
	maxInFlight := flag.Int("max-inflight", 256, "in-flight request cap before shedding with 429 (negative disables; superseded by -admit-p99-target)")
	admitTarget := flag.Duration("admit-p99-target", 0, "adaptive admission: adjust the in-flight cap to hold observed p99 at this target, shedding /batch before /distance (0 keeps the static -max-inflight cap)")
	admitMin := flag.Int("admit-min", 4, "with -admit-p99-target: floor for the adapted in-flight cap")
	admitMax := flag.Int("admit-max", 4096, "with -admit-p99-target: ceiling for the adapted in-flight cap")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative disables)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and a /metrics mirror on this operator-only address (empty disables)")
	trace := flag.Bool("trace", false, "distributed tracing: per-attempt backend spans, traceparent propagation to replicas, sampled span JSONL at -trace-out")
	traceOut := flag.String("trace-out", "gateway.spans.jsonl", "with -trace: span JSONL output path")
	traceSample := flag.Int("trace-sample", 1, "with -trace: keep one trace in N (head sampling; children inherit)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "drain budget for graceful shutdown")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnegate:", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logFormat)
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "rnegate: -backends is required")
		os.Exit(2)
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}

	var shardMap *rne.ShardMap
	if *shardMapPath != "" {
		shardMap, err = rne.LoadShardMap(*shardMapPath)
		if err != nil {
			logger.Error("loading shard map", "path", *shardMapPath, "error", err)
			os.Exit(1)
		}
		logger.Info("region routing on", "path", *shardMapPath,
			"shards", shardMap.NumShards(), "vertices", shardMap.NumVertices(),
			"cut_level", shardMap.CutLevel())
	}

	gwCfg := gateway.Config{
		Backends:       urls,
		ShardMap:       shardMap,
		VirtualNodes:   *vnodes,
		HealthInterval: *healthInterval,
		EjectAfter:     *ejectAfter,
		BackoffBase:    *backoffBase,
		BackoffMax:     *backoffMax,
		BackendTimeout: *backendTimeout,
		RetryBudget:    *retryBudget,
		Hedge:          *hedge,
		HedgeMinDelay:  *hedgeMinDelay,
		HedgeMaxDelay:  *hedgeMaxDelay,
		BudgetMargin:   *budgetMargin,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
	}
	if *admitTarget > 0 {
		gwCfg.Admission = &resilience.AdmissionConfig{
			TargetP99: *admitTarget,
			Min:       *admitMin,
			Max:       *admitMax,
		}
		logger.Info("adaptive admission on", "p99_target", *admitTarget,
			"min", *admitMin, "max", *admitMax)
	}
	if *hedge {
		logger.Info("hedged /distance on", "min_delay", *hedgeMinDelay, "max_delay", *hedgeMaxDelay)
	}
	if *trace {
		gwCfg.Trace = telemetry.TraceConfig{
			Path:        *traceOut,
			Service:     "gateway",
			SampleEvery: *traceSample,
		}
		logger.Info("tracing on", "out", *traceOut, "sample_every", *traceSample)
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		logger.Error("configuring gateway", "error", err)
		os.Exit(1)
	}
	defer gw.Close()

	if *debugAddr != "" {
		go serveDebug(*debugAddr, gw, logger)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("gateway listening", "addr", *addr, "backends", len(urls))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("serving", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("signal received; draining in-flight requests", "grace", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown incomplete; closing remaining connections", "error", err)
			httpSrv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serving", "error", err)
			os.Exit(1)
		}
		logger.Info("shutdown complete")
	}
}

// serveDebug runs the operator-only listener, matching rneserver's:
// net/http/pprof profiles (the load harness captures CPU/heap from
// here mid-step) plus a /metrics mirror, kept off the public address
// so profiling can never be triggered by query traffic.
func serveDebug(addr string, gw *gateway.Gateway, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", gw.Stats().Registry().Handler())
	logger.Info("debug listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Warn("debug listener failed", "addr", addr, "error", err)
	}
}
