// Command rneload is the saturation-grade load harness for the
// serving tier: closed-loop (max-throughput) and open-loop (paced
// arrival schedule — coordinated omission charged to the target, not
// hidden) generation against /distance, /batch and /knn, with
// HDR-style log-bucketed latency capture per route and status class.
//
// The harness does not stop at client-side numbers: while each step
// runs it scrapes the target fleet's /metrics (admission limit, sheds,
// retries, hedges, GC and goroutine gauges) and joins the counter
// deltas with the client-observed latency of the same window, so a
// p99 knee in the report comes attributed to admission clamping, GC
// pressure or backend ejection rather than guessed at. With
// -profile-cpu / -profile-heap it also captures pprof profiles from
// the target's -debug-addr listener at fixed points in each step.
//
// Steps sweep load levels in one invocation; -append folds multiple
// invocations (single replica, then gateway; guard on, then off) into
// one BENCH_load.json for side-by-side comparison.
//
// Usage:
//
//	rneload -target http://localhost:8080 \
//	  -steps 'c=4,qps=0,d=5s;c=4,qps=200,d=5s;c=8,qps=400,d=5s' \
//	  -mix distance=8,batch=1,knn=1 -out BENCH_load.json
//
//	# gateway run joined against gateway and both replicas, appended:
//	rneload -target http://localhost:9090 -vertices 10000 \
//	  -scrape gate=http://localhost:9090,r1=http://localhost:8080,r2=http://localhost:8081 \
//	  -steps 'c=8,qps=400,d=5s' -name gateway -append -out BENCH_load.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rneload: ")

	target := flag.String("target", "", "base URL of the replica or gateway under load (required)")
	steps := flag.String("steps", "c=4,qps=0,d=5s", "semicolon-separated load steps, each c=<clients>,qps=<qps>,d=<duration>[,w=<warmup>]; qps=0 is closed loop")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "default per-step warmup excluded from the measured window (override per step with w=)")
	mix := flag.String("mix", "distance=1", "route mix weights, e.g. distance=8,batch=1,knn=1 (gateways serve no /knn)")
	batchSize := flag.Int("batch-size", 32, "pairs per /batch request")
	knnK := flag.Int("knn-k", 8, "k per /knn request")
	vertices := flag.Int("vertices", 0, "vertex-id bound for generated queries (0 discovers from the target's /healthz; required for gateway targets)")
	seed := flag.Int64("seed", 1, "workload seed (per-client streams derive from it)")
	scrape := flag.String("scrape", "", "comma-separated name=URL /metrics endpoints to join with each step (default: the target itself)")
	scrapeInterval := flag.Duration("scrape-interval", 500*time.Millisecond, "timeline sampling period during a step")
	debugURL := flag.String("debug-url", "", "target's operator (-debug-addr) base URL for pprof capture")
	profileCPU := flag.Int("profile-cpu", 0, "with -debug-url: capture an N-second CPU profile starting at each step's warmup end (0 disables)")
	profileHeap := flag.Bool("profile-heap", false, "with -debug-url: capture a heap profile at each step's end")
	profileDir := flag.String("profile-dir", "load-profiles", "directory for captured pprof profiles")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request client deadline")
	name := flag.String("name", "", "run name recorded in the report (e.g. replica, gateway)")
	tags := flag.String("tags", "", "comma-separated key=value tags recorded on the run (e.g. guard=on,replicas=2)")
	out := flag.String("out", "BENCH_load.json", "report output path")
	appendRun := flag.Bool("append", false, "append this run to an existing -out report instead of overwriting")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	if *target == "" {
		log.Fatal("-target is required")
	}
	stepList, err := loadgen.ParseSteps(*steps, *warmup)
	if err != nil {
		log.Fatal(err)
	}
	mixVal, err := loadgen.ParseMix(*mix)
	if err != nil {
		log.Fatal(err)
	}
	scrapes, err := parseScrapes(*scrape)
	if err != nil {
		log.Fatal(err)
	}
	tagMap, err := parseTags(*tags)
	if err != nil {
		log.Fatal(err)
	}

	cfg := loadgen.Config{
		Target:            *target,
		Mix:               mixVal,
		BatchSize:         *batchSize,
		KNNK:              *knnK,
		Vertices:          *vertices,
		Seed:              *seed,
		Scrapes:           scrapes,
		ScrapeInterval:    *scrapeInterval,
		DebugURL:          *debugURL,
		ProfileCPUSeconds: *profileCPU,
		ProfileHeap:       *profileHeap,
		ProfileDir:        *profileDir,
		RequestTimeout:    *reqTimeout,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	runner, err := loadgen.New(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	run, err := runner.Run(ctx, stepList, tagMap)
	run.Name = *name
	if err != nil {
		// A canceled sweep still reports the completed steps.
		log.Printf("sweep interrupted: %v (%d/%d steps done)", err, len(run.Steps), len(stepList))
	}
	if len(run.Steps) == 0 {
		log.Fatal("no steps completed; nothing to report")
	}

	report := loadgen.NewReport()
	if *appendRun {
		if report, err = loadgen.LoadReport(*out); err != nil {
			log.Fatal(err)
		}
	}
	report.AppendRun(run)
	if err := report.Write(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d runs)", *out, len(report.Runs))
	printSummary(run)
}

func parseScrapes(s string) ([]loadgen.ScrapeTarget, error) {
	if s == "" {
		return nil, nil
	}
	var out []loadgen.ScrapeTarget
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("scrape entry %q is not name=URL", part)
		}
		out = append(out, loadgen.ScrapeTarget{Name: name, URL: u})
	}
	return out, nil
}

func parseTags(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tag %q is not key=value", part)
		}
		out[k] = v
	}
	return out, nil
}

// printSummary renders the sweep as a terminal table: one line per
// (step, route, class) with the offered/achieved rates and the tail.
func printSummary(run loadgen.Run) {
	w := os.Stdout
	fmt.Fprintf(w, "\n%-14s %-10s %-5s %9s %9s %9s %9s %9s %9s\n",
		"step", "route", "class", "count", "ach qps", "p50 ms", "p99 ms", "p99.9 ms", "max ms")
	for _, st := range run.Steps {
		for _, rs := range st.Routes {
			fmt.Fprintf(w, "%-14s %-10s %-5s %9d %9.1f %9.3f %9.3f %9.3f %9.3f\n",
				st.Label, rs.Route, rs.Class, rs.Count, st.AchievedQPS,
				rs.P50MS, rs.P99MS, rs.P999MS, rs.MaxMS)
		}
		if st.UnsentArrivals > 0 {
			fmt.Fprintf(w, "%-14s   %d intended arrivals unsent (target saturated)\n", st.Label, st.UnsentArrivals)
		}
		for _, sj := range st.Servers {
			if sj.ScrapeError != "" {
				fmt.Fprintf(w, "%-14s   scrape %s: %s\n", st.Label, sj.Name, sj.ScrapeError)
			} else if sj.HTTPLatency != nil {
				fmt.Fprintf(w, "%-14s   server %s: http p50 %.3fms p99 %.3fms (%d reqs)",
					st.Label, sj.Name, sj.HTTPLatency.P50MS, sj.HTTPLatency.P99MS, sj.HTTPLatency.Count)
				if sj.GCPause != nil && sj.GCPause.Count > 0 {
					fmt.Fprintf(w, ", gc pauses %d p99 %.3fms", sj.GCPause.Count, sj.GCPause.P99MS)
				}
				fmt.Fprintln(w)
			}
		}
	}
}
