// Command rnebuild trains an RNE model over a road network and saves
// it to disk.
//
// Usage:
//
//	rnebuild -graph bj.txt -o bj.rne
//	rnebuild -preset bj-mini -dim 64 -o bj.rne
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	rne "repro"
)

func main() {
	graphPath := flag.String("graph", "", "input graph in edge-list format")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	out := flag.String("o", "model.rne", "output model file")
	dim := flag.Int("dim", 64, "embedding dimension d")
	seed := flag.Int64("seed", 42, "training seed")
	epochs := flag.Int("epochs", 0, "SGD epochs per phase (0 = default)")
	naive := flag.Bool("naive", false, "flat vertex embedding instead of hierarchical")
	noAFT := flag.Bool("no-finetune", false, "disable active fine-tuning")
	indexOut := flag.String("index-out", "", "also build and save a spatial index here")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed (with -index-out)")
	flag.Parse()

	var g *rne.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = rne.LoadGraph(*graphPath)
	case *preset != "":
		g, err = rne.Preset(*preset)
	default:
		err = fmt.Errorf("need -graph or -preset")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnebuild:", err)
		os.Exit(2)
	}

	opt := rne.DefaultOptions(*seed)
	opt.Dim = *dim
	if *epochs > 0 {
		opt.Epochs = *epochs
	}
	opt.Hierarchical = !*naive
	opt.ActiveFineTune = !*noAFT
	if *naive {
		opt.VertexStrategy = rne.VertexRandom
	}

	fmt.Fprintf(os.Stderr, "rnebuild: training d=%d over %d vertices...\n", opt.Dim, g.NumVertices())
	model, stats, err := rne.Build(g, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnebuild:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rnebuild: built in %v (%d samples), validation %s\n",
		stats.Total.Round(1e6), stats.SamplesUsed, stats.Validation)
	if err := model.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "rnebuild:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rnebuild: saved %s (%d bytes)\n", *out, model.IndexBytes())

	if *indexOut != "" {
		rng := rand.New(rand.NewSource(*seed + 1))
		nTargets := int(*targetFrac * float64(g.NumVertices()))
		if nTargets < 1 {
			nTargets = 1
		}
		targets := make([]int32, 0, nTargets)
		seen := make(map[int32]bool, nTargets)
		for len(targets) < nTargets {
			v := int32(rng.Intn(g.NumVertices()))
			if !seen[v] {
				seen[v] = true
				targets = append(targets, v)
			}
		}
		idx, err := rne.NewSpatialIndex(model, targets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rnebuild:", err)
			os.Exit(1)
		}
		if err := idx.SaveFile(*indexOut); err != nil {
			fmt.Fprintln(os.Stderr, "rnebuild:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rnebuild: saved spatial index %s over %d targets\n", *indexOut, idx.Size())
	}
}
