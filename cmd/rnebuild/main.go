// Command rnebuild trains an RNE model over a road network and saves
// it to disk.
//
// Usage:
//
//	rnebuild -graph bj.txt -o bj.rne
//	rnebuild -preset bj-mini -dim 64 -o bj.rne
//
// Long builds can be made restartable with -checkpoint: training state
// is written atomically as phases complete, and a killed build rerun
// with -resume restarts from the last completed hierarchy level /
// epoch instead of from scratch. The checkpoint file is removed once
// the final model has been saved.
//
//	rnebuild -preset usw-mini -o usw.rne -checkpoint usw.ckpt
//	rnebuild -preset usw-mini -o usw.rne -checkpoint usw.ckpt -resume
//
// Training runs under a divergence sentinel: a non-finite embedding or
// a validation-error spike rolls training back to the last good state,
// halves the learning rate, and retries, up to -max-recoveries times.
// An unusable -resume checkpoint is discarded with a warning unless
// -strict-resume is set. -alt-out additionally saves an ALT landmark
// index for rneserver's guard mode.
//
// With -registry and -publish the built artifacts are additionally
// published as a new immutable version in a model registry, which
// rneserver -registry replicas hot-swap to on SIGHUP or /admin/reload:
//
//	rnebuild -preset bj-mini -registry ./models -publish bj -publish-compact
//
// Every build is traced: phase durations, the per-unit loss/learning-
// rate/recovery series and checkpoint accounting are written as JSON
// to -report (build-report.json by default), progress is logged in
// structured form (-log-level, -log-format), and -metrics-addr serves
// the live rne_build_* gauges in Prometheus text on /metrics while the
// build runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"time"

	rne "repro"
	"repro/internal/fsx"
	"repro/internal/telemetry"
)

// report is the machine-readable record of one rnebuild run: the build
// inputs, the BuildStats quantities of Tables III/IV, and the full
// telemetry trace (phase spans, per-unit loss/LR/recovery series,
// checkpoint accounting).
type report struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Dim      int    `json:"dim"`
	Seed     int64  `json:"seed"`

	TotalMS       float64 `json:"total_ms"`
	SetupMS       float64 `json:"setup_ms"`
	HierPhaseMS   float64 `json:"hier_phase_ms"`
	VertexPhaseMS float64 `json:"vertex_phase_ms"`
	FineTuneMS    float64 `json:"finetune_ms"`

	SamplesUsed    int64 `json:"samples_used"`
	SamplesSkipped int64 `json:"samples_skipped"`

	Resumed             bool     `json:"resumed"`
	CheckpointDiscarded bool     `json:"checkpoint_discarded"`
	CheckpointFailures  int      `json:"checkpoint_failures"`
	Recoveries          int      `json:"recoveries"`
	Rollbacks           []string `json:"rollbacks,omitempty"`
	FinalLR             float64  `json:"final_lr"`

	ValidationMeanRel float64 `json:"validation_mean_rel"`
	ValidationP50Rel  float64 `json:"validation_p50_rel"`
	ValidationP99Rel  float64 `json:"validation_p99_rel"`
	ValidationMaxRel  float64 `json:"validation_max_rel"`

	Trace telemetry.BuildReport `json:"trace"`
}

func main() {
	graphPath := flag.String("graph", "", "input graph in edge-list format")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	out := flag.String("o", "model.rne", "output model file")
	dim := flag.Int("dim", 64, "embedding dimension d")
	seed := flag.Int64("seed", 42, "training seed")
	epochs := flag.Int("epochs", 0, "SGD epochs per phase (0 = default)")
	naive := flag.Bool("naive", false, "flat vertex embedding instead of hierarchical")
	noAFT := flag.Bool("no-finetune", false, "disable active fine-tuning")
	indexOut := flag.String("index-out", "", "also build and save a spatial index here")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed (with -index-out)")
	checkpoint := flag.String("checkpoint", "", "write training checkpoints to this file (removed on success)")
	ckptEvery := flag.Int("checkpoint-every", 1, "epochs between checkpoint writes (with -checkpoint)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	strictResume := flag.Bool("strict-resume", false, "fail instead of restarting when the -resume checkpoint is unusable")
	maxRecoveries := flag.Int("max-recoveries", 3, "divergence-sentinel rollbacks before the build fails")
	altOut := flag.String("alt-out", "", "also build and save an ALT landmark index here (for rneserver -alt-index)")
	altLandmarks := flag.Int("alt-landmarks", 16, "landmark count for -alt-out")
	registryRoot := flag.String("registry", "", "versioned model registry root (see rneserver -registry)")
	publishName := flag.String("publish", "", "publish the built artifacts to -registry as a new version under this model name")
	publishCompact := flag.Bool("publish-compact", false, "with -publish: also store the float32 compact sibling (for rneserver -compact)")
	publishShards := flag.Bool("publish-shards", false, "with -publish: also cut the model into region shards and store them (for rneserver -shard / rnegate -shard-map)")
	shardLevel := flag.Int("shard-level", 1, "hierarchy depth to cut shards at (with -publish-shards)")
	shardCount := flag.Int("shard-count", 0, "shard count K for -publish-shards (0 = one shard per cut-level region)")
	reportPath := flag.String("report", "build-report.json", "write the machine-readable build report here (empty disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve live build metrics on this address at /metrics while training (empty disables)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnebuild:", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logFormat)
	fail := func(err error) {
		logger.Error("build failed", "error", err)
		os.Exit(1)
	}
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "rnebuild: "+msg)
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		usage("-resume requires -checkpoint")
	}
	if *strictResume && !*resume {
		usage("-strict-resume requires -resume")
	}
	if *altOut != "" && *altLandmarks < 1 {
		usage(fmt.Sprintf("-alt-landmarks must be >= 1, got %d", *altLandmarks))
	}
	if *targetFrac < 0 || math.IsNaN(*targetFrac) {
		usage(fmt.Sprintf("-target-frac must be non-negative, got %v", *targetFrac))
	}
	if *publishName != "" && *registryRoot == "" {
		usage("-publish requires -registry")
	}
	if *registryRoot != "" && *publishName == "" {
		usage("-registry requires -publish (the model name to publish as)")
	}
	if *publishCompact && *publishName == "" {
		usage("-publish-compact requires -publish")
	}
	if *publishShards && *publishName == "" {
		usage("-publish-shards requires -publish")
	}
	if *publishShards && *naive {
		usage("-publish-shards requires hierarchical training (drop -naive)")
	}
	if *publishShards && *shardLevel < 1 {
		usage(fmt.Sprintf("-shard-level must be >= 1, got %d", *shardLevel))
	}

	var g *rne.Graph
	source := *graphPath
	switch {
	case *graphPath != "":
		g, err = rne.LoadGraph(*graphPath)
	case *preset != "":
		g, err = rne.Preset(*preset)
		source = "preset:" + *preset
	default:
		err = fmt.Errorf("need -graph or -preset")
	}
	if err != nil {
		usage(err.Error())
	}

	reg := telemetry.NewRegistry()
	trace := telemetry.NewTracer(logger, reg)
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		go func() {
			logger.Info("serving build metrics", "addr", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Warn("metrics listener failed", "addr", *metricsAddr, "error", err)
			}
		}()
	}

	opt := rne.DefaultOptions(*seed)
	opt.Dim = *dim
	if *epochs > 0 {
		opt.Epochs = *epochs
	}
	opt.Hierarchical = !*naive
	opt.ActiveFineTune = !*noAFT
	if *naive {
		opt.VertexStrategy = rne.VertexRandom
	}
	opt.CheckpointPath = *checkpoint
	opt.CheckpointEvery = *ckptEvery
	opt.Resume = *resume
	opt.StrictResume = *strictResume
	opt.MaxRecoveries = *maxRecoveries
	opt.Logger = logger
	opt.Trace = trace

	logger.Info("training", "dim", opt.Dim, "vertices", g.NumVertices(), "edges", g.NumEdges(), "seed", *seed)
	model, stats, err := rne.Build(g, opt)
	if err != nil {
		fail(err)
	}
	if stats.Resumed {
		logger.Info("resumed from checkpoint", "path", *checkpoint)
	}
	logger.Info("build done",
		"total", stats.Total.Round(time.Millisecond), "samples", stats.SamplesUsed,
		"validation", stats.Validation.String())
	if stats.SamplesSkipped > 0 {
		logger.Warn("skipped samples with non-finite distances", "count", stats.SamplesSkipped)
	}
	if stats.Recoveries > 0 {
		logger.Warn("sentinel recovered", "count", stats.Recoveries, "final_lr", stats.FinalLR)
		for _, rb := range stats.Rollbacks {
			logger.Warn("rollback", "at", rb)
		}
	}
	if stats.CheckpointFailures > 0 {
		logger.Warn("tolerated failed checkpoint writes", "count", stats.CheckpointFailures)
	}

	if *reportPath != "" {
		rep := report{
			Graph:    source,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			Dim:      opt.Dim,
			Seed:     *seed,

			TotalMS:       float64(stats.Total.Nanoseconds()) / 1e6,
			SetupMS:       float64(stats.Setup.Nanoseconds()) / 1e6,
			HierPhaseMS:   float64(stats.HierPhase.Nanoseconds()) / 1e6,
			VertexPhaseMS: float64(stats.VertexPhase.Nanoseconds()) / 1e6,
			FineTuneMS:    float64(stats.FineTune.Nanoseconds()) / 1e6,

			SamplesUsed:    stats.SamplesUsed,
			SamplesSkipped: stats.SamplesSkipped,

			Resumed:             stats.Resumed,
			CheckpointDiscarded: stats.CheckpointDiscarded,
			CheckpointFailures:  stats.CheckpointFailures,
			Recoveries:          stats.Recoveries,
			Rollbacks:           stats.Rollbacks,
			FinalLR:             stats.FinalLR,

			ValidationMeanRel: stats.Validation.MeanRel,
			ValidationP50Rel:  stats.Validation.P50Rel,
			ValidationP99Rel:  stats.Validation.P99Rel,
			ValidationMaxRel:  stats.Validation.MaxRel,

			Trace: trace.Report(),
		}
		err := fsx.WriteAtomic(*reportPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
		if err != nil {
			fail(err)
		}
		logger.Info("wrote build report", "path", *reportPath)
	}

	if err := model.SaveFile(*out); err != nil {
		fail(err)
	}
	logger.Info("saved model", "path", *out, "bytes", model.IndexBytes())
	if *checkpoint != "" {
		if err := os.Remove(*checkpoint); err == nil {
			logger.Info("removed checkpoint", "path", *checkpoint)
		} else if !os.IsNotExist(err) {
			logger.Warn("could not remove checkpoint", "path", *checkpoint, "error", err)
		}
	}

	var idx *rne.SpatialIndex
	if *indexOut != "" {
		targets, err := rne.SampleTargets(g, *targetFrac, *seed+1)
		if err != nil {
			fail(err)
		}
		idx, err = rne.NewSpatialIndex(model, targets)
		if err != nil {
			fail(err)
		}
		if err := idx.SaveFile(*indexOut); err != nil {
			fail(err)
		}
		logger.Info("saved spatial index", "path", *indexOut, "targets", idx.Size())
	}

	var lt *rne.ALTIndex
	if *altOut != "" {
		lt, err = rne.BuildALTIndex(g, *altLandmarks, *seed+2)
		if err != nil {
			fail(err)
		}
		if err := lt.SaveFile(*altOut); err != nil {
			fail(err)
		}
		logger.Info("saved ALT index", "path", *altOut,
			"landmarks", lt.NumLandmarks(), "bytes", lt.IndexBytes())
	}

	// Publishing is additive to the file outputs: the registry version
	// carries the model plus whatever siblings this run built (-alt-out's
	// guard index, -index-out's spatial index, the float32 compact
	// sibling with -publish-compact, and the geo-shard artifacts with
	// -publish-shards). rneserver -registry replicas pick the new version
	// up on their next SIGHUP or POST /admin/reload.
	if *publishName != "" {
		var split *rne.ShardSplit
		if *publishShards {
			split, err = rne.CutShards(model, lt, rne.ShardConfig{
				CutLevel: *shardLevel,
				Shards:   *shardCount,
			})
			if err != nil {
				fail(err)
			}
			for _, sm := range split.Shards {
				logger.Info("cut shard", "shard", sm.ShardID(), "of", sm.NumShards(),
					"owned", sm.OwnedVertices(), "embedding_bytes", sm.EmbeddingBytes())
			}
		}
		store, err := rne.OpenModelRegistry(*registryRoot)
		if err != nil {
			fail(err)
		}
		version, err := store.Publish(*publishName, rne.RegistryArtifacts{
			Model:   model,
			Compact: *publishCompact,
			ALT:     lt,
			Index:   idx,
			Shards:  split,
		})
		if err != nil {
			fail(err)
		}
		logger.Info("published to registry", "root", *registryRoot,
			"name", *publishName, "version", version,
			"compact", *publishCompact, "guard", lt != nil, "spatial", idx != nil,
			"shards", *publishShards)
	}
}
