// Command rnebuild trains an RNE model over a road network and saves
// it to disk.
//
// Usage:
//
//	rnebuild -graph bj.txt -o bj.rne
//	rnebuild -preset bj-mini -dim 64 -o bj.rne
//
// Long builds can be made restartable with -checkpoint: training state
// is written atomically as phases complete, and a killed build rerun
// with -resume restarts from the last completed hierarchy level /
// epoch instead of from scratch. The checkpoint file is removed once
// the final model has been saved.
//
//	rnebuild -preset usw-mini -o usw.rne -checkpoint usw.ckpt
//	rnebuild -preset usw-mini -o usw.rne -checkpoint usw.ckpt -resume
//
// Training runs under a divergence sentinel: a non-finite embedding or
// a validation-error spike rolls training back to the last good state,
// halves the learning rate, and retries, up to -max-recoveries times.
// An unusable -resume checkpoint is discarded with a warning unless
// -strict-resume is set. -alt-out additionally saves an ALT landmark
// index for rneserver's guard mode.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	rne "repro"
)

func main() {
	graphPath := flag.String("graph", "", "input graph in edge-list format")
	preset := flag.String("preset", "", "built-in preset instead of -graph")
	out := flag.String("o", "model.rne", "output model file")
	dim := flag.Int("dim", 64, "embedding dimension d")
	seed := flag.Int64("seed", 42, "training seed")
	epochs := flag.Int("epochs", 0, "SGD epochs per phase (0 = default)")
	naive := flag.Bool("naive", false, "flat vertex embedding instead of hierarchical")
	noAFT := flag.Bool("no-finetune", false, "disable active fine-tuning")
	indexOut := flag.String("index-out", "", "also build and save a spatial index here")
	targetFrac := flag.Float64("target-frac", 0.1, "fraction of vertices indexed (with -index-out)")
	checkpoint := flag.String("checkpoint", "", "write training checkpoints to this file (removed on success)")
	ckptEvery := flag.Int("checkpoint-every", 1, "epochs between checkpoint writes (with -checkpoint)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	strictResume := flag.Bool("strict-resume", false, "fail instead of restarting when the -resume checkpoint is unusable")
	maxRecoveries := flag.Int("max-recoveries", 3, "divergence-sentinel rollbacks before the build fails")
	altOut := flag.String("alt-out", "", "also build and save an ALT landmark index here (for rneserver -alt-index)")
	altLandmarks := flag.Int("alt-landmarks", 16, "landmark count for -alt-out")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rnebuild:", err)
		os.Exit(1)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "rnebuild: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *strictResume && !*resume {
		fmt.Fprintln(os.Stderr, "rnebuild: -strict-resume requires -resume")
		os.Exit(2)
	}
	if *altOut != "" && *altLandmarks < 1 {
		fmt.Fprintf(os.Stderr, "rnebuild: -alt-landmarks must be >= 1, got %d\n", *altLandmarks)
		os.Exit(2)
	}
	if *targetFrac < 0 || math.IsNaN(*targetFrac) {
		fmt.Fprintf(os.Stderr, "rnebuild: -target-frac must be non-negative, got %v\n", *targetFrac)
		os.Exit(2)
	}

	var g *rne.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = rne.LoadGraph(*graphPath)
	case *preset != "":
		g, err = rne.Preset(*preset)
	default:
		err = fmt.Errorf("need -graph or -preset")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnebuild:", err)
		os.Exit(2)
	}

	opt := rne.DefaultOptions(*seed)
	opt.Dim = *dim
	if *epochs > 0 {
		opt.Epochs = *epochs
	}
	opt.Hierarchical = !*naive
	opt.ActiveFineTune = !*noAFT
	if *naive {
		opt.VertexStrategy = rne.VertexRandom
	}
	opt.CheckpointPath = *checkpoint
	opt.CheckpointEvery = *ckptEvery
	opt.Resume = *resume
	opt.StrictResume = *strictResume
	opt.MaxRecoveries = *maxRecoveries
	opt.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rnebuild: "+format+"\n", args...)
	}

	fmt.Fprintf(os.Stderr, "rnebuild: training d=%d over %d vertices...\n", opt.Dim, g.NumVertices())
	model, stats, err := rne.Build(g, opt)
	if err != nil {
		fail(err)
	}
	if stats.Resumed {
		fmt.Fprintf(os.Stderr, "rnebuild: resumed from checkpoint %s\n", *checkpoint)
	}
	fmt.Fprintf(os.Stderr, "rnebuild: built in %v (%d samples), validation %s\n",
		stats.Total.Round(1e6), stats.SamplesUsed, stats.Validation)
	if stats.SamplesSkipped > 0 {
		fmt.Fprintf(os.Stderr, "rnebuild: skipped %d samples with non-finite distances\n", stats.SamplesSkipped)
	}
	if stats.Recoveries > 0 {
		fmt.Fprintf(os.Stderr, "rnebuild: sentinel recovered %d time(s), final lr %.4g:\n", stats.Recoveries, stats.FinalLR)
		for _, rb := range stats.Rollbacks {
			fmt.Fprintf(os.Stderr, "rnebuild:   rollback at %s\n", rb)
		}
	}
	if stats.CheckpointFailures > 0 {
		fmt.Fprintf(os.Stderr, "rnebuild: tolerated %d failed checkpoint write(s)\n", stats.CheckpointFailures)
	}
	if err := model.SaveFile(*out); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "rnebuild: saved %s (%d bytes)\n", *out, model.IndexBytes())
	if *checkpoint != "" {
		if err := os.Remove(*checkpoint); err == nil {
			fmt.Fprintf(os.Stderr, "rnebuild: removed checkpoint %s\n", *checkpoint)
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "rnebuild: warning: could not remove checkpoint: %v\n", err)
		}
	}

	if *indexOut != "" {
		targets, err := rne.SampleTargets(g, *targetFrac, *seed+1)
		if err != nil {
			fail(err)
		}
		idx, err := rne.NewSpatialIndex(model, targets)
		if err != nil {
			fail(err)
		}
		if err := idx.SaveFile(*indexOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "rnebuild: saved spatial index %s over %d targets\n", *indexOut, idx.Size())
	}

	if *altOut != "" {
		lt, err := rne.BuildALTIndex(g, *altLandmarks, *seed+2)
		if err != nil {
			fail(err)
		}
		if err := lt.SaveFile(*altOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "rnebuild: saved ALT index %s (%d landmarks, %d bytes)\n",
			*altOut, lt.NumLandmarks(), lt.IndexBytes())
	}
}
